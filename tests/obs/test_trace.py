"""Tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)


def x_events(tracer):
    return [e for e in tracer.snapshot() if e["ph"] == "X"]


class TestSpans:
    def test_span_emits_complete_event(self):
        tracer = Tracer()
        with tracer.span("sim:run", app="kafka"):
            pass
        (event,) = x_events(tracer)
        assert event["name"] == "sim:run"
        assert event["cat"] == "sim"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"app": "kafka"}
        assert event["pid"] == event["tid"] == tracer.pid

    def test_nested_spans_both_recorded(self):
        tracer = Tracer()
        with tracer.span("analysis:outer"):
            with tracer.span("analysis:inner"):
                pass
        names = [e["name"] for e in x_events(tracer)]
        # inner closes first (stack order)
        assert names == ["analysis:inner", "analysis:outer"]

    def test_span_set_attaches_late_args(self):
        tracer = Tracer()
        with tracer.span("sim:replay", app="kafka") as span:
            span.set(backend="columnar")
        (event,) = x_events(tracer)
        assert event["args"] == {"app": "kafka", "backend": "columnar"}

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("run:evaluate"):
            assert tracer.current_span.name == "run:evaluate"
        assert tracer.current_span is None

    def test_category_defaults_without_prefix(self):
        tracer = Tracer()
        with tracer.span("toplevel"):
            pass
        assert x_events(tracer)[0]["cat"] == "run"


class TestPointEvents:
    def test_instant(self):
        tracer = Tracer()
        tracer.instant("store:hit", kind="stats", app="kafka")
        (event,) = [e for e in tracer.snapshot() if e["ph"] == "i"]
        assert event["name"] == "store:hit"
        assert event["args"] == {"kind": "stats", "app": "kafka"}

    def test_counter(self):
        tracer = Tracer()
        tracer.counter("cache", hits=3, misses=1)
        (event,) = [e for e in tracer.snapshot() if e["ph"] == "C"]
        assert event["args"] == {"hits": 3, "misses": 1}


class TestNullTracer:
    def test_span_is_noop_and_records_nothing(self):
        with NULL_TRACER.span("sim:run", app="x") as span:
            span.set(backend="columnar")
        NULL_TRACER.instant("store:hit")
        NULL_TRACER.counter("cache", hits=1)
        assert NULL_TRACER.snapshot() == []

    def test_enabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_context_is_shared_singleton(self):
        # the null path must not allocate per call
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.start_span("a") is NULL_SPAN

    def test_write_refuses(self, tmp_path):
        with pytest.raises(RuntimeError):
            NULL_TRACER.write(tmp_path / "t.jsonl")

    def test_absorb_is_noop(self):
        NULL_TRACER.absorb([{"ph": "X", "pid": 1}])
        assert NULL_TRACER.snapshot() == []


class TestCrossProcessAbsorb:
    def test_absorb_reparents_pid_and_tid(self):
        parent = Tracer()
        worker = Tracer(process_label="repro-worker")
        with worker.span("job:evaluate-variant", app="kafka"):
            pass
        worker_events = pickle.loads(pickle.dumps(worker.snapshot()))
        with parent.span("prewarm:simulate"):
            parent.absorb(worker_events)
        absorbed = [
            e for e in x_events(parent) if e["name"] == "job:evaluate-variant"
        ]
        (event,) = absorbed
        assert event["pid"] == parent.pid
        assert event["tid"] == worker.pid
        assert event["args"]["reparented_under"] == "prewarm:simulate"

    def test_absorb_names_worker_thread_once(self):
        parent = Tracer()
        worker = Tracer()
        with worker.span("job:a"):
            pass
        with worker.span("job:b"):
            pass
        parent.absorb(worker.snapshot())
        metas = [
            e
            for e in parent.snapshot()
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["tid"] == worker.pid
        ]
        assert len(metas) == 1
        # NB: parent and worker run in the same test process, so the
        # synthetic thread name collapses onto the main row here; in a
        # real pool the worker pid differs and gets its own row.

    def test_timestamps_share_the_epoch_anchor(self):
        parent = Tracer()
        worker = Tracer()
        with worker.span("job:x"):
            pass
        parent.absorb(worker.snapshot())
        (event,) = x_events(parent)
        # both clocks anchor perf_counter to the Unix epoch: an
        # absorbed timestamp lands near the parent's own clock, not
        # near zero
        assert abs(event["ts"] - parent._now_us()) < 60 * 1e6


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("sim:run", app="kafka"):
            tracer.instant("store:hit", kind="plan")
        target = tracer.write(tmp_path / "trace.jsonl")
        events = read_trace(target)
        assert events == tracer.snapshot()

    def test_file_is_chrome_trace_array(self, tmp_path):
        tracer = Tracer()
        with tracer.span("sim:run"):
            pass
        text = (tracer.write(tmp_path / "t.jsonl")).read_text()
        lines = text.splitlines()
        assert lines[0] == "["
        # the trailing-comma array flavour: closing "]" is optional,
        # and json accepts the completed form
        assert json.loads(text.rstrip().rstrip(",") + "]")
        # every event line parses standalone (JSONL consumers)
        for line in lines[1:]:
            json.loads(line.rstrip(","))

    def test_len_counts_events(self):
        tracer = Tracer()
        before = len(tracer)
        tracer.instant("x")
        assert len(tracer) == before + 1


class TestCurrentTracer:
    def test_defaults_to_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_restore(self):
        tracer = Tracer()
        try:
            assert set_tracer(tracer) is tracer
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exit(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_a_nulltracer(self):
        assert isinstance(NULL_TRACER, NullTracer)
