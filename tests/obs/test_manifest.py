"""Tests for run manifests (repro.obs.manifest)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import Evaluator, ExperimentSettings
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    validate_manifest,
)
from repro.perf import PerfRegistry
from repro.runconfig import RunConfig

SETTINGS = ExperimentSettings(
    profile_length=6_000, eval_length=8_000, warmup=1_500, scale=0.15
)


@pytest.fixture(scope="module")
def evaluator():
    # a private registry: the global one may carry parallel-round
    # entries from earlier test files, and the manifest reports them
    ev = Evaluator(config=RunConfig(settings=SETTINGS, perf=PerfRegistry()))
    ev.prewarm(apps=["wordpress"], variants=("baseline", "ispy"))
    return ev


@pytest.fixture(scope="module")
def manifest(evaluator):
    return RunManifest.collect(evaluator, command="evaluate")


class TestCollect:
    def test_validates_clean(self, manifest):
        assert manifest.validate() == []

    def test_identity_fields(self, manifest):
        import repro

        payload = manifest.payload
        assert payload["format"] == MANIFEST_FORMAT
        assert payload["version"] == MANIFEST_VERSION
        assert payload["repro_version"] == repro.__version__
        assert payload["command"] == "evaluate"
        assert payload["settings"]["scale"] == SETTINGS.scale
        assert payload["settings"]["eval_length"] == SETTINGS.eval_length
        assert payload["jobs"] == 1

    def test_kernel_gate_recorded(self, manifest):
        from repro import kernel

        section = manifest.payload["kernel"]
        assert section["numpy_available"] == kernel.HAVE_NUMPY
        assert section["numpy_enabled"] == kernel.numpy_enabled()

    def test_apps_carry_variant_digests(self, manifest):
        apps = manifest.payload["apps"]
        assert set(apps) == {"wordpress"}
        variants = apps["wordpress"]["variants"]
        assert {"baseline", "ispy"} <= set(variants)
        for record in variants.values():
            assert len(record["record_sha256"]) == 64
            assert record["cycles"] > 0

    def test_digest_is_deterministic(self, evaluator, manifest):
        again = RunManifest.collect(evaluator, command="evaluate")
        a = manifest.payload["apps"]["wordpress"]["variants"]
        b = again.payload["apps"]["wordpress"]["variants"]
        assert a == b

    def test_backend_counts_are_simulate_counts(self, manifest):
        counts = manifest.payload["backend_counts"]
        assert sum(counts.values()) >= 2  # baseline + ispy at minimum
        assert all(isinstance(v, int) for v in counts.values())

    def test_storeless_run_records_absent_store(self, manifest):
        section = manifest.payload["store"]
        assert section["present"] is False
        assert section["hit_rate"] is None

    def test_store_counters_flow_through(self, tmp_path):
        config = RunConfig(settings=SETTINGS, store=tmp_path / "cache")
        ev = config.evaluator()
        ev.prewarm(apps=["wordpress"], variants=("baseline",))
        payload = RunManifest.collect(ev).payload
        section = payload["store"]
        assert section["present"] is True
        assert section["root"] == str(ev.store.root)
        # a cold run looks everything up and misses
        assert sum(section["misses"].values()) > 0
        assert section["hit_rate"] is not None


class TestParallelSection:
    """Round accounting and worker-budget provenance (schema v2)."""

    def test_sequential_run_has_empty_parallel_section(self, manifest):
        section = manifest.payload["parallel"]
        assert section["mode"] is None
        assert section["workers"] is None
        assert section["rounds"] == {}
        assert section["worker_budget"] is None
        assert section["clamped"] is False

    def test_parallel_run_records_rounds_and_budget(self):
        from repro import kernel

        if not kernel.numpy_enabled():
            pytest.skip(
                "the exact executor needs the numpy kernel; without it "
                "sharded runs fall back to sequential streaming"
            )
        config = RunConfig(
            settings=SETTINGS, shard_insns=2_000, parallel_shards="exact",
            worker_budget=1,
        )
        ev = Evaluator(config=config)
        ev.prewarm(apps=["wordpress"], variants=("baseline",))
        parallel_manifest = RunManifest.collect(ev, command="evaluate")
        assert parallel_manifest.validate() == []
        section = parallel_manifest.payload["parallel"]
        assert section["mode"] == "exact"
        assert section["worker_budget"] == 1
        assert section["clamped"] is False
        for stage in ("l1-summary", "l1-scan", "l2-scan", "l3-scan"):
            entry = section["rounds"][stage]
            assert entry["calls"] >= 1
            assert entry["units"] >= 1
            assert entry["seconds"] >= 0
        # pool bookkeeping stays out of the per-round table
        assert "busy" not in section["rounds"]
        assert "shard" not in section["rounds"]

    def test_rounds_entries_are_schema_checked(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        payload["parallel"]["rounds"] = {"l1-scan": {"calls": 1}}
        errors = validate_manifest(payload)
        assert any("rounds['l1-scan']" in error for error in errors)


class TestValidation:
    def test_missing_field_reported(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        del payload["kernel"]
        errors = validate_manifest(payload)
        assert any("manifest.kernel: missing" in e for e in errors)

    def test_wrong_type_reported(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        payload["settings"]["scale"] = "big"
        errors = validate_manifest(payload)
        assert any("manifest.settings.scale" in e for e in errors)

    def test_bool_does_not_satisfy_int(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        payload["jobs"] = True
        errors = validate_manifest(payload)
        assert any("manifest.jobs" in e and "bool" in e for e in errors)

    def test_bad_variant_record_reported(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        payload["apps"]["wordpress"]["variants"]["baseline"].pop("record_sha256")
        errors = validate_manifest(payload)
        assert any("record_sha256" in e for e in errors)

    def test_unknown_format_rejected(self, manifest):
        payload = json.loads(json.dumps(manifest.payload))
        payload["format"] = "not-a-manifest"
        assert validate_manifest(payload)

    def test_non_dict_payload(self):
        assert validate_manifest([1, 2, 3])


class TestWriteLoad:
    def test_roundtrip(self, manifest, tmp_path):
        target = manifest.write(tmp_path / "m.json")
        loaded = RunManifest.load(target)
        assert loaded.payload == manifest.payload

    def test_write_refuses_invalid(self, manifest, tmp_path):
        broken = RunManifest(json.loads(json.dumps(manifest.payload)))
        del broken.payload["stages"]
        with pytest.raises(ManifestError):
            broken.write(tmp_path / "m.json")
        assert not (tmp_path / "m.json").exists()

    def test_load_refuses_tampered(self, manifest, tmp_path):
        target = manifest.write(tmp_path / "m.json")
        payload = json.loads(target.read_text())
        payload["version"] = 99
        target.write_text(json.dumps(payload))
        with pytest.raises(ManifestError):
            RunManifest.load(target)

    def test_written_json_is_sorted_and_indented(self, manifest, tmp_path):
        text = manifest.write(tmp_path / "m.json").read_text()
        assert text == json.dumps(manifest.payload, indent=2, sort_keys=True) + "\n"
