"""Shared fixtures: small deterministic programs, traces and apps."""

from __future__ import annotations

import pytest

from repro.profiling.profiler import profile_execution
from repro.sim.trace import BlockInfo, BlockTrace, Program
from repro.workloads.apps import build_app


def make_program(block_sizes, base_address=0x400000, name="test-program"):
    """A program with the given per-block byte sizes, laid out
    contiguously from *base_address*."""
    blocks = []
    address = base_address
    for block_id, size in enumerate(block_sizes):
        blocks.append(
            BlockInfo(
                block_id=block_id,
                address=address,
                size_bytes=size,
                instruction_count=max(1, size // 4),
            )
        )
        address += size
    return Program(blocks, name=name)


@pytest.fixture
def tiny_program():
    """Four 64-byte blocks, one cache line each."""
    return make_program([64, 64, 64, 64])


@pytest.fixture
def tiny_trace():
    return BlockTrace([0, 1, 2, 3, 0, 1, 2, 3])


@pytest.fixture(scope="session")
def small_app():
    """A scaled-down wordpress: big enough to miss, small enough to
    profile in well under a second."""
    return build_app("wordpress", scale=0.25)


@pytest.fixture(scope="session")
def small_profile(small_app):
    trace = small_app.trace(20_000)
    return profile_execution(
        small_app.program, trace, data_traffic=small_app.data_traffic()
    )


@pytest.fixture(scope="session")
def small_eval_trace(small_app):
    return small_app.trace(24_000, seed=small_app.spec.seed + 31337)
