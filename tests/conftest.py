"""Shared fixtures and factories: deterministic programs, seeded
random traces/plans, and microarchitectural state snapshots.

The randomized factories are the one source of generated inputs for
the differential suites — every test that wants "a random program
with a random trace and maybe a random plan" builds it here, from an
explicit ``random.Random`` so failures replay from the seed alone.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.hashing import context_mask
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.profiling.profiler import profile_execution
from repro.sim.params import line_of
from repro.sim.trace import BlockInfo, BlockTrace, Program
from repro.workloads.adversarial import ADVERSARIAL_APP_NAMES
from repro.workloads.apps import build_app, get_app


def make_program(block_sizes, base_address=0x400000, name="test-program"):
    """A program with the given per-block byte sizes, laid out
    contiguously from *base_address*."""
    blocks = []
    address = base_address
    for block_id, size in enumerate(block_sizes):
        blocks.append(
            BlockInfo(
                block_id=block_id,
                address=address,
                size_bytes=size,
                instruction_count=max(1, size // 4),
            )
        )
        address += size
    return Program(blocks, name=name)


def make_random_program(rng, n_blocks=48, sizes=(32, 64, 128, 192), name=None):
    """A seeded random program.  *n_blocks* (against the 32 KiB L1I)
    is the miss-density knob: small programs fit and mostly hit, large
    ones thrash."""
    return make_program(
        [rng.choice(sizes) for _ in range(n_blocks)],
        name=name or f"random-{n_blocks}b",
    )


def make_random_trace(rng, n_blocks, length, fanout=4):
    """A seeded Markov walk over a random CFG.

    Each block gets *fanout* successors drawn once; low fan-out yields
    loopy, predictable traces, high fan-out approaches uniform-random
    block selection.
    """
    successors = {
        block: [rng.randrange(n_blocks) for _ in range(max(1, fanout))]
        for block in range(n_blocks)
    }
    current = rng.randrange(n_blocks)
    ids = []
    for _ in range(length):
        ids.append(current)
        current = rng.choice(successors[current])
    return BlockTrace(ids, {"generator": "markov", "fanout": fanout})


def make_random_plan(rng, program, n_sites=6, hash_bits=16):
    """A seeded random prefetch plan mixing every instruction kind
    (plain, coalesced, conditional, both).  *n_sites* is the plan-
    density knob."""
    n_blocks = len(list(program))
    instrs = []
    for _ in range(n_sites):
        site = rng.randrange(n_blocks)
        target = line_of(program.block(rng.randrange(n_blocks)).address)
        bit_vector = rng.randrange(1, 8) if rng.random() < 0.4 else 0
        if rng.random() < 0.5:
            ctx = tuple(sorted(
                {rng.randrange(n_blocks) for _ in range(rng.randint(1, 3))}
            ))
            mask = context_mask(
                [program.block(b).address for b in ctx], hash_bits
            )
            instrs.append(PrefetchInstr(
                site_block=site, base_line=target, bit_vector=bit_vector,
                context_mask=mask, context_blocks=ctx,
            ))
        else:
            instrs.append(PrefetchInstr(
                site_block=site, base_line=target, bit_vector=bit_vector,
            ))
    plan = PrefetchPlan(f"random-{n_sites}s")
    plan.extend(instrs)
    return plan


def hierarchy_state(core):
    """The complete final cache state of a replay: per level, per set,
    MRU-first resident lines, pending-prefetch sets, fill-port clock."""
    levels = (
        ("l1i", core.hierarchy.l1i),
        ("l2", core.hierarchy.l2),
        ("l3", core.hierarchy.l3),
    )
    state = {
        level: {
            index: list(stack._stack)
            for index, stack in cache._sets.items()
        }
        for level, cache in levels
    }
    state["pending"] = {
        level: sorted(cache._pending_prefetched) for level, cache in levels
    }
    state["fill_port_busy"] = core.hierarchy.fill_port.busy_until
    return state


def engine_state(core):
    """The prefetch engine's complete runtime state after a replay."""
    engine = core.engine
    if engine is None:
        return None
    state = {
        "inflight": dict(engine.inflight),
        "tp": engine.true_positive_firings,
        "fp": engine.false_positive_firings,
        "fp_rate": engine.conditional_false_positive_rate,
    }
    if engine.tracker is not None:
        state["fifo"] = engine.tracker.history()
        state["counters"] = engine.tracker.counters()
        state["bits"] = engine.tracker.bits()
    if engine.exact_history is not None:
        state["exact"] = list(engine.exact_history)
    return state


#: the scale the test suites build adversarial apps at (small enough
#: to build in tens of milliseconds, big enough to stress the L1I)
ADVERSARIAL_TEST_SCALE = 0.12


def adversarial_app(name, scale=ADVERSARIAL_TEST_SCALE):
    """A (memoized) adversarial app at the suite's standard scale."""
    return get_app(name, scale)


@st.composite
def adversarial_workloads(draw, lengths=(240, 600)):
    """Hypothesis strategy: one adversarial app plus a seeded trace.

    Draws the generator name, walk seed and trace length; the app
    itself is deterministic per name (memoized via :func:`get_app`),
    so shrinking only moves along the seed/length axes.  Returns
    ``(name, app, trace)``.
    """
    name = draw(st.sampled_from(ADVERSARIAL_APP_NAMES), label="app")
    app = adversarial_app(name)
    seed = draw(st.integers(0, 2**16), label="walk_seed")
    length = draw(st.sampled_from(lengths), label="length")
    return name, app, app.trace(length, seed=seed)


@pytest.fixture
def tiny_program():
    """Four 64-byte blocks, one cache line each."""
    return make_program([64, 64, 64, 64])


@pytest.fixture
def tiny_trace():
    return BlockTrace([0, 1, 2, 3, 0, 1, 2, 3])


@pytest.fixture(scope="session")
def small_app():
    """A scaled-down wordpress: big enough to miss, small enough to
    profile in well under a second."""
    return build_app("wordpress", scale=0.25)


@pytest.fixture(scope="session")
def small_profile(small_app):
    trace = small_app.trace(20_000)
    return profile_execution(
        small_app.program, trace, data_traffic=small_app.data_traffic()
    )


@pytest.fixture(scope="session")
def small_eval_trace(small_app):
    return small_app.trace(24_000, seed=small_app.spec.seed + 31337)


@pytest.fixture(scope="session")
def ingested_fixture(tmp_path_factory):
    """A ChampSim-style fixture trace, ingested end to end.

    A small synthetic app's block trace is expanded to instruction
    records, written as a gzip'd ChampSim binary, re-ingested, and
    persisted as an on-disk shard directory — the external-trace path
    the differential and protocol-contract suites replay through every
    backend.  Returns ``(workload, sharded_trace)``.
    """
    from repro.workloads import ingest as ing

    app = build_app("finagle-http", scale=0.2)
    trace = app.trace(6_000, seed=app.spec.seed + 404)
    root = tmp_path_factory.mktemp("ingested")
    path = root / "fixture.trace.gz"
    ing.write_champsim_fixture(path, app.program, trace, compress="gz")
    workload = ing.ingest_trace_file(path)
    sharded = ing.write_ingested(workload, root / "shards", shard_insns=2048)
    return workload, sharded
