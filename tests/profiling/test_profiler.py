"""ExecutionProfile / profile_execution tests."""

import pytest

from repro.profiling.profiler import profile_execution
from repro.sim.cpu import simulate
from repro.sim.trace import BlockTrace

from ..conftest import make_program


@pytest.fixture()
def looped_profile():
    program = make_program([64] * 6)
    trace = BlockTrace([0, 1, 2, 3, 4, 5] * 4)
    return program, trace, profile_execution(program, trace)


class TestProfileContents:
    def test_trace_retained(self, looped_profile):
        _, trace, profile = looped_profile
        assert profile.block_ids == trace.block_ids
        assert len(profile) == len(trace)

    def test_cycles_monotonic(self, looped_profile):
        _, _, profile = looped_profile
        cycles = profile.block_cycles
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))
        assert len(cycles) == len(profile.block_ids)

    def test_miss_samples_match_simulation(self, looped_profile):
        program, trace, profile = looped_profile
        stats = simulate(program, trace)
        assert profile.sampled_miss_count == stats.l1i_misses

    def test_edge_counts_conserved(self, looped_profile):
        _, trace, profile = looped_profile
        assert sum(profile.edge_counts.values()) == len(trace) - 1
        assert profile.edge_counts[(0, 1)] == 4
        assert profile.edge_counts[(5, 0)] == 3

    def test_block_counts(self, looped_profile):
        _, _, profile = looped_profile
        assert profile.block_counts[0] == 4

    def test_baseline_stats_attached(self, looped_profile):
        _, _, profile = looped_profile
        assert profile.baseline_stats is not None
        assert profile.baseline_stats.l1i_misses == 6  # cold misses


class TestWindows:
    def test_window_excludes_current(self, looped_profile):
        _, _, profile = looped_profile
        window = profile.window(3, depth=2)
        assert list(window) == [1, 2]

    def test_window_clamped_at_start(self, looped_profile):
        _, _, profile = looped_profile
        assert list(profile.window(1, depth=32)) == [0]
        assert list(profile.window(0)) == []

    def test_default_depth_is_lbr(self, looped_profile):
        _, _, profile = looped_profile
        assert len(profile.window(30)) <= 32


class TestOccurrences:
    def test_occurrence_index(self, looped_profile):
        _, _, profile = looped_profile
        assert profile.occurrences(0) == [0, 6, 12, 18]
        assert profile.occurrences(999) == []


class TestMissAggregation:
    def test_counts_by_line(self, looped_profile):
        program, _, profile = looped_profile
        counts = profile.miss_counts_by_line()
        assert sum(counts.values()) == profile.sampled_miss_count
        for line in counts:
            assert line in {program.block(b).lines[0] for b in range(6)}

    def test_samples_for_line(self, looped_profile):
        _, _, profile = looped_profile
        for line, count in profile.miss_counts_by_line().items():
            assert len(profile.samples_for_line(line)) == count

    def test_next_miss_within(self):
        program = make_program([64] * 3)
        trace = BlockTrace([0, 1, 2])
        profile = profile_execution(program, trace)
        line2 = program.block(2).lines[0]
        found = profile.next_miss_within(line2, 0, max_cycles=10_000)
        assert found is not None and found.line == line2
        assert profile.next_miss_within(line2, 0, max_cycles=1.0) is None


class TestInstructionAccounting:
    def test_cumulative_instructions(self, looped_profile):
        _, _, profile = looped_profile
        cumulative = profile.cumulative_instructions
        assert cumulative[0] == 0
        assert cumulative[1] == 16  # 64B block = 16 instructions
        assert cumulative[-1] == 16 * (len(profile) - 1)

    def test_average_cpi_includes_stalls(self, looped_profile):
        _, _, profile = looped_profile
        # 0.5 base CPI plus cold-miss stalls
        assert profile.average_cpi > 0.5

    def test_estimated_distance(self, looped_profile):
        _, _, profile = looped_profile
        distance = profile.estimated_cycle_distance(0, 4)
        assert distance == pytest.approx(64 * profile.average_cpi)


class TestSampling:
    def test_sample_period_reduces_samples(self):
        program = make_program([64] * 6)
        trace = BlockTrace(list(range(6)) * 4)
        full = profile_execution(program, trace, sample_period=1)
        sparse = profile_execution(program, trace, sample_period=3)
        assert sparse.sampled_miss_count == full.sampled_miss_count // 3
