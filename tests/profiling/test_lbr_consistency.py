"""Consistency between the hardware LBR model and profile windows.

The offline analysis reconstructs LBR windows from the retained block
trace (``profile.window``); the hardware model maintains a real ring
buffer.  If the two ever disagreed, contexts discovered offline would
not match what the runtime-hash sees.
"""

from repro.profiling.lbr import LastBranchRecord
from repro.profiling.profiler import profile_execution
from repro.sim.cpu import TraceObserver, simulate
from repro.sim.trace import BlockTrace

from ..conftest import make_program


class _LBRObserver(TraceObserver):
    """Maintains a real LBR during replay and snapshots it at misses."""

    def __init__(self, depth=32):
        self.lbr = LastBranchRecord(depth=depth)
        self.snapshots = {}
        self._previous = None

    def on_block(self, index, block_id, cycle):
        if self._previous is not None:
            self.lbr.record(self._previous, block_id, cycle)
        self._previous = block_id

    def on_miss(self, index, block_id, line, cycle):
        self.snapshots[index] = self.lbr.source_blocks()


class TestWindowsMatchHardwareLBR:
    def test_snapshots_equal_profile_windows(self):
        program = make_program([64] * 30)
        # a walk with revisits so windows are non-trivial
        ids = ([0, 1, 2, 3, 4] * 3 + list(range(30))) * 4
        trace = BlockTrace(ids)

        observer = _LBRObserver()
        simulate(program, trace, observer=observer)
        profile = profile_execution(program, trace)

        assert observer.snapshots  # some misses occurred
        for index, snapshot in observer.snapshots.items():
            assert tuple(profile.window(index)) == snapshot

    def test_window_depth_respected(self):
        program = make_program([64] * 50)
        trace = BlockTrace(list(range(50)))
        profile = profile_execution(program, trace)
        assert len(profile.window(49, depth=32)) == 32
        assert list(profile.window(49, depth=5)) == [44, 45, 46, 47, 48]

    def test_runtime_hash_agrees_with_offline_window(self):
        """Push a profile window through the Bloom filter: any context
        drawn from that window must match (no false negatives end to
        end, from profiling through hardware)."""
        from repro.core.bloom import LBRRuntimeHash
        from repro.core.hashing import bit_position_table, context_mask

        program = make_program([64] * 30)
        trace = BlockTrace((list(range(30)) * 3)[:80])
        profile = profile_execution(program, trace)

        addresses = {b.block_id: b.address for b in program}
        table = bit_position_table(addresses, 16)
        index = 60
        window = list(profile.window(index))
        runtime = LBRRuntimeHash(table, hash_bits=16)
        for block in window:
            runtime.push(block)
        context = window[:4]
        mask = context_mask((addresses[b] for b in context), 16)
        assert runtime.matches(mask)
