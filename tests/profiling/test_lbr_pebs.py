"""LBR ring buffer and PEBS sampler tests."""

import pytest

from repro.profiling.lbr import LBR_DEPTH, BranchRecord, LastBranchRecord
from repro.profiling.pebs import MissSample, PEBSSampler


class TestLBR:
    def test_depth_default_is_32(self):
        assert LastBranchRecord().depth == LBR_DEPTH == 32

    def test_record_and_snapshot(self):
        lbr = LastBranchRecord(depth=4)
        lbr.record(1, 2, 10.0)
        lbr.record(2, 3, 14.0)
        snapshot = lbr.snapshot()
        assert snapshot == (
            BranchRecord(1, 2, 10.0),
            BranchRecord(2, 3, 14.0),
        )

    def test_ring_overwrites_oldest(self):
        lbr = LastBranchRecord(depth=3)
        for i in range(6):
            lbr.record(i, i + 1, float(i))
        assert lbr.source_blocks() == (3, 4, 5)
        assert len(lbr) == 3

    def test_source_blocks_order(self):
        lbr = LastBranchRecord(depth=4)
        for i in (7, 8, 9):
            lbr.record(i, 0, 0.0)
        assert lbr.source_blocks() == (7, 8, 9)

    def test_clear(self):
        lbr = LastBranchRecord()
        lbr.record(1, 2, 0.0)
        lbr.clear()
        assert len(lbr) == 0

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            LastBranchRecord(depth=0)

    def test_iteration(self):
        lbr = LastBranchRecord(depth=2)
        lbr.record(1, 2, 0.0)
        assert [r.source_block for r in lbr] == [1]


class TestPEBS:
    def test_period_one_records_everything(self):
        pebs = PEBSSampler(sample_period=1)
        for i in range(5):
            assert pebs.observe(i, 10, 100, float(i))
        assert len(pebs.samples) == 5
        assert pebs.sampled_fraction == 1.0

    def test_period_three_records_every_third(self):
        pebs = PEBSSampler(sample_period=3)
        recorded = [pebs.observe(i, 10, 100, float(i)) for i in range(9)]
        assert recorded == [False, False, True] * 3
        assert len(pebs.samples) == 3
        assert pebs.total_events == 9

    def test_sample_contents(self):
        pebs = PEBSSampler()
        pebs.observe(7, 42, 1000, 3.5)
        sample = pebs.samples[0]
        assert sample == MissSample(7, 42, 1000, 3.5)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PEBSSampler(sample_period=0)

    def test_empty_sampled_fraction(self):
        assert PEBSSampler().sampled_fraction == 0.0

    def test_snapshot_immutable_copy(self):
        pebs = PEBSSampler()
        pebs.observe(0, 1, 2, 0.0)
        snap = pebs.snapshot()
        pebs.observe(1, 1, 2, 1.0)
        assert len(snap) == 1
