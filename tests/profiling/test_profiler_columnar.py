"""Differential tests: vectorized profiler vs the observer-driven one.

Every field of :class:`ExecutionProfile` must match exactly — the
profile is the planner's sole input, so any divergence here would
cascade into different plans.
"""

from __future__ import annotations

import pytest

from repro import kernel
from repro.profiling.profiler import profile_execution
from repro.workloads.apps import build_app

APPS = ("wordpress", "drupal", "finagle-http")


def _profiles(app, trace, sample_period=1):
    results = {}
    for mode, backend in (
        ("ref", kernel.reference_path),
        ("col", kernel.force_numpy_kernel),
    ):
        with backend():
            results[mode] = profile_execution(
                app.program,
                trace,
                sample_period=sample_period,
                data_traffic=app.data_traffic(),
            )
    return results["ref"], results["col"]


def _assert_profiles_equal(ref, col):
    assert col.program_name == ref.program_name
    assert col.block_ids == ref.block_ids
    assert col.block_cycles == ref.block_cycles
    assert col.miss_samples == ref.miss_samples
    assert col.edge_counts == ref.edge_counts
    assert col.block_counts == ref.block_counts
    assert col.cumulative_instructions == ref.cumulative_instructions
    assert col.lbr_depth == ref.lbr_depth
    assert col.baseline_stats == ref.baseline_stats


@pytest.mark.parametrize("name", APPS)
def test_profiles_identical_across_apps(name):
    app = build_app(name, scale=0.25)
    trace = app.trace(10_000)
    ref, col = _profiles(app, trace)
    _assert_profiles_equal(ref, col)


@pytest.mark.parametrize("sample_period", [2, 7, 100])
def test_profiles_identical_across_sample_periods(sample_period):
    app = build_app("wordpress", scale=0.25)
    trace = app.trace(10_000)
    ref, col = _profiles(app, trace, sample_period=sample_period)
    _assert_profiles_equal(ref, col)


def test_occurrence_and_window_queries_agree():
    app = build_app("drupal", scale=0.25)
    trace = app.trace(8_000)
    ref, col = _profiles(app, trace)
    hot = ref.block_counts.most_common(5)
    for block, _ in hot:
        assert col.occurrences(block) == ref.occurrences(block)
    for sample in ref.miss_samples[:20]:
        assert (
            col.window(sample.trace_index) == ref.window(sample.trace_index)
        )
