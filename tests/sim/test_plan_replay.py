"""Differential tests: plan-bearing columnar replay vs the reference loop.

``plan_replay`` (the ``columnar-plan`` backend) must be *bit-identical*
to :class:`CoreSimulator`'s reference loop whenever it elects to run:
every statistic, every float, the final cache residency, the fill-port
clock, and the prefetch engine's runtime state (inflight map, counting
Bloom filter, exact-context history, Fig. 21 true/false-positive
accounting).  Equality here is always ``==``, never approximate.

Configurations the kernel does not model (an attached observer, a
re-used non-pristine simulator) must *provably* fall back to the
reference loop — asserted via ``last_replay_backend``.
"""

from __future__ import annotations

import pytest

from repro import kernel
from repro.analysis.experiments import Evaluator, ExperimentSettings
from repro.core.hashing import context_mask
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.cpu import CoreSimulator, TraceObserver
from repro.sim.params import line_of
from repro.sim.trace import BlockTrace

from ..conftest import (
    engine_state as _engine_state,
    hierarchy_state as _hierarchy_state,
    make_program,
)


def _run(program, trace, backend, plan, data_traffic=None, warmup=0, **kwargs):
    with backend():
        core = CoreSimulator(
            program,
            plan=plan,
            data_traffic=data_traffic() if data_traffic else None,
            **kwargs,
        )
        stats = core.run(trace, warmup=warmup)
    return core, stats


def _assert_plan_identical(
    program, trace, plan, data_traffic=None, warmup=0, **kwargs
):
    """Run both backends; assert the kernel engaged and matched exactly."""
    ref_core, ref_stats = _run(
        program, trace, kernel.reference_path, plan,
        data_traffic=data_traffic, warmup=warmup, **kwargs,
    )
    col_core, col_stats = _run(
        program, trace, kernel.force_numpy_kernel, plan,
        data_traffic=data_traffic, warmup=warmup, **kwargs,
    )
    assert ref_core.last_replay_backend == "reference"
    assert col_core.last_replay_backend == "columnar-plan"
    assert col_stats == ref_stats
    assert _hierarchy_state(col_core) == _hierarchy_state(ref_core)
    assert col_core.hierarchy.l1i.stats == ref_core.hierarchy.l1i.stats
    assert col_core.hierarchy.l2.stats == ref_core.hierarchy.l2.stats
    assert col_core.hierarchy.l3.stats == ref_core.hierarchy.l3.stats
    assert _engine_state(col_core) == _engine_state(ref_core)
    return ref_stats


def _plan_of(*instrs):
    plan = PrefetchPlan("test")
    plan.extend(instrs)
    return plan


class TestSyntheticPlans:
    """Tiny hand-built plans covering each instruction kind."""

    def test_unconditional_single_line(self):
        program = make_program([64] * 6)
        target = line_of(program.block(3).address)
        plan = _plan_of(PrefetchInstr(site_block=0, base_line=target))
        _assert_plan_identical(
            program, BlockTrace([0, 1, 2, 3, 0, 3, 1, 0]), plan
        )

    def test_coalesced_lprefetch(self):
        # One Lprefetch covering blocks 3..5 (contiguous lines).
        program = make_program([64] * 8)
        base = line_of(program.block(3).address)
        plan = _plan_of(
            PrefetchInstr(site_block=0, base_line=base, bit_vector=0b11)
        )
        _assert_plan_identical(
            program, BlockTrace([0, 1, 3, 4, 5, 0, 3, 4, 5]), plan
        )

    def test_conditional_cprefetch(self):
        program = make_program([64] * 8)
        target = line_of(program.block(5).address)
        ctx = (1, 2)
        mask = context_mask([program.block(b).address for b in ctx], 16)
        plan = _plan_of(
            PrefetchInstr(
                site_block=3,
                base_line=target,
                context_mask=mask,
                context_blocks=ctx,
            )
        )
        # First visit to site 3 has no context in the LBR (suppressed);
        # later visits follow blocks 1 and 2 (fires).
        trace = BlockTrace([3, 5, 0, 1, 2, 3, 5, 0, 3, 1, 2, 3, 5])
        stats = _assert_plan_identical(program, trace, plan)
        assert stats.prefetches_suppressed > 0

    def test_conditional_mask_zero_always_fires(self):
        program = make_program([64] * 4)
        plan = _plan_of(
            PrefetchInstr(
                site_block=0,
                base_line=line_of(program.block(2).address),
                context_mask=0,
                context_blocks=(),
            )
        )
        _assert_plan_identical(program, BlockTrace([0, 2, 1, 0, 2]), plan)

    def test_clprefetch_conditional_and_coalesced(self):
        program = make_program([64] * 10)
        base = line_of(program.block(6).address)
        mask = context_mask([program.block(1).address], 16)
        plan = _plan_of(
            PrefetchInstr(
                site_block=2,
                base_line=base,
                bit_vector=0b101,
                context_mask=mask,
                context_blocks=(1,),
            )
        )
        trace = BlockTrace([2, 6, 0, 1, 2, 6, 7, 8, 9, 1, 2, 6, 9])
        _assert_plan_identical(program, trace, plan)

    def test_multiple_instructions_per_site(self):
        program = make_program([64] * 8)
        mask = context_mask([program.block(1).address], 16)
        plan = _plan_of(
            PrefetchInstr(site_block=0, base_line=line_of(program.block(3).address)),
            PrefetchInstr(
                site_block=0,
                base_line=line_of(program.block(5).address),
                context_mask=mask,
                context_blocks=(1,),
            ),
            PrefetchInstr(
                site_block=0,
                base_line=line_of(program.block(6).address),
                bit_vector=0b1,
            ),
        )
        trace = BlockTrace([0, 3, 5, 1, 0, 3, 5, 6, 7, 1, 0, 6])
        _assert_plan_identical(program, trace, plan)

    def test_warmup_boundary_with_plan(self):
        program = make_program([64] * 8)
        mask = context_mask([program.block(1).address], 16)
        plan = _plan_of(
            PrefetchInstr(
                site_block=2,
                base_line=line_of(program.block(4).address),
                context_mask=mask,
                context_blocks=(1,),
            )
        )
        trace = BlockTrace([0, 1, 2, 4, 3, 1, 2, 4] * 4)
        _assert_plan_identical(program, trace, plan, warmup=9)
        _assert_plan_identical(
            program, trace, plan, warmup=len(trace.block_ids) - 1
        )

    def test_exact_context_tracking_synthetic(self):
        program = make_program([64] * 8)
        ctx = (1, 2)
        mask = context_mask([program.block(b).address for b in ctx], 16)
        plan = _plan_of(
            PrefetchInstr(
                site_block=3,
                base_line=line_of(program.block(5).address),
                context_mask=mask,
                context_blocks=ctx,
            )
        )
        trace = BlockTrace([1, 2, 3, 5, 0, 3, 5, 1, 2, 3, 5] * 3)
        _assert_plan_identical(
            program, trace, plan, track_exact_context=True
        )


SMALL_EVALUATOR = None


def _small_evaluation():
    global SMALL_EVALUATOR
    if SMALL_EVALUATOR is None:
        SMALL_EVALUATOR = Evaluator(ExperimentSettings.small())["wordpress"]
    return SMALL_EVALUATOR


class TestAppPlans:
    """Real planner output on a real workload, data traffic + warmup."""

    @pytest.mark.parametrize("plan_name", ("asmdb", "ispy"))
    def test_planned_replay_matches(self, plan_name):
        evaluation = _small_evaluation()
        plan = (
            evaluation.asmdb_plan()
            if plan_name == "asmdb"
            else evaluation.ispy_plan()
        )
        stats = _assert_plan_identical(
            evaluation.app.program,
            evaluation.eval_trace,
            plan,
            data_traffic=evaluation._eval_data_traffic,
            warmup=evaluation.settings.warmup,
        )
        # The workload must actually exercise the interesting paths:
        # in-flight arrivals (late prefetch hits) and, for I-SPY's
        # conditional instructions, Bloom-gated suppression.
        assert stats.late_prefetch_hits > 0
        assert stats.prefetches_issued > 0
        if plan_name == "ispy":
            assert stats.prefetches_suppressed > 0

    @pytest.mark.parametrize("plan_name", ("asmdb", "ispy"))
    def test_exact_context_accounting_matches(self, plan_name):
        """Fig. 21 accounting: tp/fp counters and the rate, exactly."""
        evaluation = _small_evaluation()
        plan = (
            evaluation.asmdb_plan()
            if plan_name == "asmdb"
            else evaluation.ispy_plan()
        )
        _assert_plan_identical(
            evaluation.app.program,
            evaluation.eval_trace,
            plan,
            data_traffic=evaluation._eval_data_traffic,
            warmup=evaluation.settings.warmup,
            track_exact_context=True,
        )

    @pytest.mark.parametrize("fraction", (0.0, 0.75))
    def test_insertion_fraction_sweep(self, fraction):
        evaluation = _small_evaluation()
        _assert_plan_identical(
            evaluation.app.program,
            evaluation.eval_trace,
            evaluation.ispy_plan(),
            data_traffic=evaluation._eval_data_traffic,
            warmup=evaluation.settings.warmup,
            prefetch_insertion_fraction=fraction,
        )


class TestFallbacks:
    """Configurations plan_replay cannot model select the reference
    loop; ``last_replay_backend`` makes the selection observable."""

    def _plan_and_program(self):
        program = make_program([64] * 6)
        plan = _plan_of(
            PrefetchInstr(site_block=0, base_line=line_of(program.block(3).address))
        )
        return program, plan, BlockTrace([0, 1, 2, 3, 0, 3])

    def test_observer_forces_reference(self):
        program, plan, trace = self._plan_and_program()
        with kernel.force_numpy_kernel():
            core = CoreSimulator(program, plan=plan)
            col_stats = core.run(trace, observer=TraceObserver())
        assert core.last_replay_backend == "reference"
        with kernel.reference_path():
            ref_core = CoreSimulator(program, plan=plan)
            ref_stats = ref_core.run(trace, observer=TraceObserver())
        assert col_stats == ref_stats

    def test_reused_simulator_forces_reference(self):
        """A second run composes with prior state: reference only."""
        program, plan, trace = self._plan_and_program()
        with kernel.force_numpy_kernel():
            col_core = CoreSimulator(program, plan=plan)
            col_core.run(trace)
            assert col_core.last_replay_backend == "columnar-plan"
            second_col = col_core.run(trace)
            assert col_core.last_replay_backend == "reference"
        with kernel.reference_path():
            ref_core = CoreSimulator(program, plan=plan)
            ref_core.run(trace)
            second_ref = ref_core.run(trace)
        assert second_col == second_ref
        assert _hierarchy_state(col_core) == _hierarchy_state(ref_core)
        assert _engine_state(col_core) == _engine_state(ref_core)

    def test_preseeded_engine_forces_reference(self):
        """Prefetches already in flight are prior state the kernel
        cannot reconstruct from scratch."""
        program, plan, trace = self._plan_and_program()
        with kernel.force_numpy_kernel():
            core = CoreSimulator(program, plan=plan)
            core.engine.inflight[line_of(program.block(3).address)] = 100.0
            core.run(trace)
        assert core.last_replay_backend == "reference"

    def test_empty_plan_takes_plain_columnar(self):
        """A plan with no instructions builds no engine at all, so the
        replay runs the plan-free ``columnar`` backend."""
        program, _, trace = self._plan_and_program()
        with kernel.force_numpy_kernel():
            core = CoreSimulator(program, plan=PrefetchPlan("empty"))
            core.run(trace)
        assert core.engine is None
        assert core.last_replay_backend == "columnar"

    def test_kernel_disabled_takes_reference(self):
        program, plan, trace = self._plan_and_program()
        with kernel.reference_path():
            core = CoreSimulator(program, plan=plan)
            core.run(trace)
        assert core.last_replay_backend == "reference"


class TestAppsAcrossWorkloads:
    @pytest.mark.parametrize("name", ("drupal", "finagle-http"))
    def test_ispy_plan_matches_on_app(self, name):
        evaluation = Evaluator(ExperimentSettings.small())[name]
        app = evaluation.app
        trace = app.trace(8_000, seed=app.spec.seed + 7)
        _assert_plan_identical(
            app.program,
            trace,
            evaluation.ispy_plan(),
            data_traffic=app.data_traffic,
            warmup=1_500,
        )
