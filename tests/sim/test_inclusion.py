"""Hierarchy-inclusion and cross-level interaction tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.replacement import InsertionPolicy


class TestInclusionOnFills:
    @given(lines=st.lists(st.integers(0, 400), min_size=1, max_size=120))
    @settings(max_examples=50)
    def test_l1_resident_implies_filled_below_at_some_point(self, lines):
        """Every demand fetch installs the line at every level, so an
        L1-resident line was certainly installed in L2/L3 (it may be
        evicted from them later, but with this footprint it is not)."""
        h = MemoryHierarchy()
        for line in lines:
            h.fetch(line)
        for line in h.l1i.resident_lines():
            assert h.l2.contains(line)
            assert h.l3.contains(line)

    def test_l1_eviction_leaves_l2_copy(self):
        h = MemoryHierarchy()
        h.fetch(7)
        h.l1i.invalidate(7)
        assert h.l2.contains(7)
        assert h.fetch(7).level == "l2"

    def test_prefetch_from_l3_also_fills_l2(self):
        h = MemoryHierarchy()
        h.fetch(7)
        h.l1i.invalidate(7)
        h.l2.invalidate(7)
        assert h.residence_level(7) == "l3"
        h.prefetch_fill(7)
        assert h.l1i.contains(7)
        assert h.l2.contains(7)

    def test_prefetch_from_memory_fills_all_levels(self):
        h = MemoryHierarchy()
        h.prefetch_fill(99)
        assert h.l1i.contains(99)
        assert h.l2.contains(99)
        assert h.l3.contains(99)


class TestPrefetchPriorityAcrossLevels:
    def test_prefetch_fills_use_prefetch_priority_everywhere(self):
        h = MemoryHierarchy()
        h.prefetch_fill(42)
        assert h.l1i.stats.prefetch_fills == 1
        assert h.l2.stats.prefetch_fills == 1
        assert h.l3.stats.prefetch_fills == 1

    def test_demand_fills_are_not_prefetch_fills(self):
        h = MemoryHierarchy()
        h.fetch(42)
        assert h.l1i.stats.prefetch_fills == 0


class TestLevelStats:
    def test_l2_sees_only_l1_misses(self):
        h = MemoryHierarchy()
        h.fetch(1)
        h.fetch(1)
        h.fetch(1)
        assert h.l2.stats.demand_accesses == 1  # only the cold miss

    def test_miss_counts_chain(self):
        h = MemoryHierarchy()
        for line in range(10):
            h.fetch(line)
        assert h.l1i.stats.demand_misses == 10
        assert h.l2.stats.demand_misses == 10
        assert h.l3.stats.demand_misses == 10
        for line in range(10):
            h.l1i.invalidate(line)
        for line in range(10):
            h.fetch(line)
        assert h.l2.stats.demand_hits == 10


class TestDataCodeInteraction:
    def test_data_never_displaces_l1i(self):
        h = MemoryHierarchy()
        h.fetch(1)
        for offset in range(100_000):
            h.data_access((1 << 41) + offset)
        assert h.l1i.contains(1)

    def test_data_displaces_l2_code_but_l3_retains(self):
        h = MemoryHierarchy()
        h.fetch(1)
        # L2 is 16K lines, L3 is 160K lines: sweep between the two
        for offset in range(40_000):
            h.data_access((1 << 41) + offset)
        assert not h.l2.contains(1)
        assert h.l3.contains(1)
        assert h.fetch(1).level in ("l1", "l3")
