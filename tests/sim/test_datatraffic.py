"""Background data-traffic model tests."""

import pytest

from repro.sim.datatraffic import DATA_LINE_BASE, DataTrafficModel, make_data_traffic
from repro.sim.hierarchy import MemoryHierarchy


class TestPacing:
    def test_rate_accounting(self):
        model = DataTrafficModel(rate_per_instruction=0.5, seed=1)
        h = MemoryHierarchy()
        issued = model.advance(100, h)
        assert issued == 50
        assert model.accesses == 50

    def test_fractional_accumulation(self):
        model = DataTrafficModel(rate_per_instruction=0.3, seed=1)
        h = MemoryHierarchy()
        total = sum(model.advance(1, h) for _ in range(100))
        # floating-point accumulation may round one access down
        assert total in (29, 30)

    def test_zero_rate_never_issues(self):
        model = DataTrafficModel(rate_per_instruction=0.0, seed=1)
        h = MemoryHierarchy()
        assert model.advance(10_000, h) == 0


class TestDeterminism:
    def test_same_seed_same_stream(self):
        results = []
        for _ in range(2):
            model = DataTrafficModel(0.5, working_set_lines=1024, seed=42)
            h = MemoryHierarchy()
            model.advance(1000, h)
            results.append(frozenset(h.l2.resident_lines()))
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        residents = []
        for seed in (1, 2):
            model = DataTrafficModel(0.5, working_set_lines=100_000, seed=seed)
            h = MemoryHierarchy()
            model.advance(1000, h)
            residents.append(frozenset(h.l2.resident_lines()))
        assert residents[0] != residents[1]


class TestAddressing:
    def test_data_lines_above_base(self):
        model = DataTrafficModel(1.0, working_set_lines=64, seed=3)
        h = MemoryHierarchy()
        model.advance(200, h)
        assert all(line >= DATA_LINE_BASE for line in h.l2.resident_lines())

    def test_never_touches_l1i(self):
        model = DataTrafficModel(1.0, seed=3)
        h = MemoryHierarchy()
        model.advance(500, h)
        assert not h.l1i.resident_lines()


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            DataTrafficModel(-0.1)

    def test_empty_working_set_rejected(self):
        with pytest.raises(ValueError):
            DataTrafficModel(0.1, working_set_lines=0)

    def test_bad_hot_fraction_rejected(self):
        with pytest.raises(ValueError):
            DataTrafficModel(0.1, hot_fraction=0.0)


class TestFactory:
    def test_zero_rate_returns_none(self):
        assert make_data_traffic(0.0, 1024, 1) is None

    def test_working_set_conversion(self):
        model = make_data_traffic(0.1, working_set_kib=64, seed=1)
        assert model is not None
        assert model.working_set_lines == 64 * 1024 // 64

    def test_reset(self):
        model = DataTrafficModel(0.5, seed=1)
        h = MemoryHierarchy()
        model.advance(100, h)
        model.reset()
        assert model.accesses == 0
