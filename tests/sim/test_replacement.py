"""LRU-stack and insertion-policy tests, including properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.replacement import InsertionPolicy, LRUStack, make_sets


class TestLRUStack:
    def test_insert_and_contains(self):
        lru = LRUStack(4)
        lru.insert(10)
        assert 10 in lru
        assert 11 not in lru

    def test_eviction_order_is_lru(self):
        lru = LRUStack(2)
        lru.insert(1)
        lru.insert(2)
        victim = lru.insert(3)
        assert victim == 1
        assert 1 not in lru and 2 in lru and 3 in lru

    def test_touch_promotes_to_mru(self):
        lru = LRUStack(2)
        lru.insert(1)
        lru.insert(2)
        assert lru.touch(1)
        victim = lru.insert(3)
        assert victim == 2

    def test_touch_missing_returns_false(self):
        lru = LRUStack(2)
        assert not lru.touch(99)

    def test_insert_at_depth(self):
        lru = LRUStack(4)
        for tag in (1, 2, 3):
            lru.insert(tag)
        # stack: 3,2,1 -> insert 9 at depth 2 -> 3,2,9,1
        lru.insert(9, depth=2)
        assert list(lru.tags()) == [3, 2, 9, 1]

    def test_insert_depth_clamped(self):
        lru = LRUStack(4)
        lru.insert(1)
        lru.insert(2, depth=100)
        assert list(lru.tags()) == [1, 2]

    def test_reinsert_moves_existing(self):
        lru = LRUStack(4)
        for tag in (1, 2, 3):
            lru.insert(tag)
        lru.insert(1, depth=0)
        assert list(lru.tags()) == [1, 3, 2]

    def test_evict(self):
        lru = LRUStack(2)
        lru.insert(5)
        assert lru.evict(5)
        assert not lru.evict(5)

    def test_victim_preview(self):
        lru = LRUStack(2)
        assert lru.victim() is None
        lru.insert(1)
        assert lru.victim() is None
        lru.insert(2)
        assert lru.victim() == 1

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            LRUStack(0)

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "touch"]), st.integers(0, 9)),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_ways(self, ops):
        lru = LRUStack(4)
        for op, tag in ops:
            if op == "insert":
                lru.insert(tag)
            else:
                lru.touch(tag)
            assert len(lru) <= 4
            assert len(set(lru.tags())) == len(lru)

    @given(tags=st.lists(st.integers(0, 100), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_most_recent_insert_is_resident(self, tags):
        lru = LRUStack(3)
        for tag in tags:
            lru.insert(tag)
        assert tags[-1] in lru


class TestInsertionPolicy:
    def test_demand_goes_to_mru(self):
        policy = InsertionPolicy(8)
        assert policy.depth_for(InsertionPolicy.DEMAND) == 0

    def test_prefetch_goes_to_half_depth(self):
        policy = InsertionPolicy(8)
        assert policy.depth_for(InsertionPolicy.PREFETCH) == 4

    def test_custom_fraction(self):
        policy = InsertionPolicy(20, prefetch_fraction=0.25)
        assert policy.depth_for(InsertionPolicy.PREFETCH) == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            InsertionPolicy(8, prefetch_fraction=1.5)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            InsertionPolicy(8).depth_for("speculative")


class TestMakeSets:
    def test_preallocates_all_sets(self):
        sets = make_sets(16, 4)
        assert len(sets) == 16
        assert all(s.ways == 4 for s in sets.values())
