"""Set-associative cache tests, including prefetch bookkeeping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import Cache
from repro.sim.params import CacheGeometry
from repro.sim.replacement import InsertionPolicy


def small_cache(size_bytes=4096, ways=4):
    """64 lines / 16 sets by default."""
    return Cache(CacheGeometry(size_bytes, ways, "test"))


class TestDemandPath:
    def test_cold_miss(self):
        cache = small_cache()
        assert not cache.access(1)
        assert cache.stats.demand_misses == 1

    def test_hit_after_fill(self):
        cache = small_cache()
        cache.access(1)
        cache.fill(1)
        assert cache.access(1)
        assert cache.stats.demand_hits == 1

    def test_miss_does_not_fill(self):
        cache = small_cache()
        cache.access(1)
        assert not cache.contains(1)

    def test_eviction_within_set(self):
        cache = small_cache(ways=2)
        sets = cache.num_sets
        lines = [0, sets, 2 * sets]  # all map to set 0
        for line in lines:
            cache.fill(line)
        assert not cache.contains(lines[0])
        assert cache.contains(lines[1]) and cache.contains(lines[2])
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.invalidate(7)

    def test_flush_keeps_stats(self):
        cache = small_cache()
        cache.access(1)
        cache.fill(1)
        cache.flush()
        assert not cache.contains(1)
        assert cache.stats.demand_misses == 1


class TestPrefetchBookkeeping:
    def test_prefetch_fill_counted(self):
        cache = small_cache()
        cache.fill(3, InsertionPolicy.PREFETCH)
        assert cache.stats.prefetch_fills == 1
        assert cache.contains(3)

    def test_demand_hit_on_prefetched_line(self):
        cache = small_cache()
        cache.fill(3, InsertionPolicy.PREFETCH)
        cache.access(3)
        assert cache.stats.prefetch_hits == 1

    def test_prefetched_line_used_once_only(self):
        cache = small_cache()
        cache.fill(3, InsertionPolicy.PREFETCH)
        cache.access(3)
        cache.access(3)
        assert cache.stats.prefetch_hits == 1

    def test_unused_prefetch_eviction_counted(self):
        cache = small_cache(ways=2)
        sets = cache.num_sets
        cache.fill(0, InsertionPolicy.PREFETCH)
        cache.fill(sets)
        cache.fill(2 * sets)
        assert cache.stats.prefetch_unused_evictions == 1

    def test_used_prefetch_eviction_not_counted_unused(self):
        cache = small_cache(ways=2)
        sets = cache.num_sets
        cache.fill(0, InsertionPolicy.PREFETCH)
        cache.access(0)
        cache.fill(sets)
        cache.fill(2 * sets)
        assert cache.stats.prefetch_unused_evictions == 0

    def test_prefetch_inserted_below_mru(self):
        cache = small_cache(ways=4)
        sets = cache.num_sets
        set0 = [0, sets, 2 * sets]
        for line in set0:
            cache.fill(line)  # demand: MRU order 2s, s, 0
        cache.fill(3 * sets, InsertionPolicy.PREFETCH)  # at depth 2
        victim = cache.fill(4 * sets)  # evicts true LRU (line 0)
        assert victim == 0


class TestCacheProperties:
    @given(
        lines=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    )
    @settings(max_examples=50)
    def test_occupancy_bounded(self, lines):
        cache = small_cache()
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
        assert len(cache.resident_lines()) <= cache.geometry.num_lines

    @given(lines=st.lists(st.integers(0, 255), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = small_cache()
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
        stats = cache.stats
        assert stats.demand_hits + stats.demand_misses == len(lines)

    @given(lines=st.lists(st.integers(0, 63), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_repeat_access_hits(self, lines):
        """With footprint <= capacity and a fill after each miss,
        the second pass over any line is a hit."""
        cache = small_cache(size_bytes=4096, ways=4)  # 64 lines
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
        # 64 distinct lines max, 64-line cache, but set conflicts can
        # evict; restrict to lines within one way-worth per set:
        cache2 = small_cache(size_bytes=64 * 64, ways=64)  # fully assoc
        for line in lines:
            if not cache2.access(line):
                cache2.fill(line)
        for line in set(lines):
            assert cache2.contains(line)

    def test_miss_ratio(self):
        cache = small_cache()
        cache.access(0)
        cache.fill(0)
        cache.access(0)
        assert cache.stats.miss_ratio == 0.5
