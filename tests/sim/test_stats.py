"""SimStats derived-metric tests."""

from repro.sim.stats import SimStats


def populated_stats():
    stats = SimStats()
    stats.compute_cycles = 500.0
    stats.frontend_stall_cycles = 500.0
    stats.program_instructions = 1000
    stats.prefetch_instructions_executed = 100
    stats.l1i_accesses = 400
    stats.l1i_misses = 40
    stats.prefetches_issued = 50
    stats.prefetches_useful = 40
    stats.prefetches_suppressed = 10
    stats.record_miss_level("l2")
    stats.record_miss_level("l2")
    stats.record_miss_level("memory")
    return stats


class TestDerivedMetrics:
    def test_cycles(self):
        assert populated_stats().cycles == 1000.0

    def test_total_instructions(self):
        assert populated_stats().total_instructions == 1100

    def test_ipc(self):
        assert populated_stats().ipc == 1.1

    def test_mpki_normalized_to_program_instructions(self):
        stats = populated_stats()
        assert stats.l1i_mpki == 40.0
        # adding prefetch instructions must not deflate MPKI
        stats.prefetch_instructions_executed += 10_000
        assert stats.l1i_mpki == 40.0

    def test_frontend_bound(self):
        assert populated_stats().frontend_bound_fraction == 0.5

    def test_prefetch_accuracy(self):
        assert populated_stats().prefetch_accuracy == 0.8

    def test_dynamic_overhead(self):
        assert populated_stats().dynamic_overhead == 0.1

    def test_miss_level_counts(self):
        stats = populated_stats()
        assert stats.miss_level_counts == {"l2": 2, "memory": 1}


class TestEmptyStats:
    def test_zero_safe(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.l1i_mpki == 0.0
        assert stats.frontend_bound_fraction == 0.0
        assert stats.prefetch_accuracy == 0.0
        assert stats.dynamic_overhead == 0.0


class TestClear:
    def test_clear_zeroes_everything(self):
        stats = populated_stats()
        stats.clear()
        assert stats.cycles == 0.0
        assert stats.total_instructions == 0
        assert stats.l1i_misses == 0
        assert stats.miss_level_counts == {}
        assert stats.prefetches_issued == 0


class TestAsDict:
    def test_keys_present(self):
        summary = populated_stats().as_dict()
        for key in ("cycles", "ipc", "l1i_mpki", "frontend_bound",
                    "prefetch_accuracy", "dynamic_overhead"):
            assert key in summary
