"""Memory-hierarchy fetch/prefetch path tests."""

from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import MachineParams


class TestFetchPath:
    def test_cold_fetch_goes_to_memory(self):
        h = MemoryHierarchy()
        result = h.fetch(100)
        assert result.level == "memory"
        assert result.penalty == 260
        assert result.was_l1_miss

    def test_fetch_fills_all_levels(self):
        h = MemoryHierarchy()
        h.fetch(100)
        assert h.l1i.contains(100)
        assert h.l2.contains(100)
        assert h.l3.contains(100)

    def test_second_fetch_hits_l1(self):
        h = MemoryHierarchy()
        h.fetch(100)
        result = h.fetch(100)
        assert result.level == "l1" and result.penalty == 0
        assert not result.was_l1_miss

    def test_l2_hit_after_l1_eviction(self):
        h = MemoryHierarchy()
        h.fetch(100)
        h.l1i.invalidate(100)
        result = h.fetch(100)
        assert result.level == "l2" and result.penalty == 12

    def test_l3_hit_after_l1_l2_eviction(self):
        h = MemoryHierarchy()
        h.fetch(100)
        h.l1i.invalidate(100)
        h.l2.invalidate(100)
        result = h.fetch(100)
        assert result.level == "l3" and result.penalty == 36


class TestResidence:
    def test_residence_levels(self):
        h = MemoryHierarchy()
        assert h.residence_level(5) == "memory"
        h.fetch(5)
        assert h.residence_level(5) == "l1"
        h.l1i.invalidate(5)
        assert h.residence_level(5) == "l2"
        h.l2.invalidate(5)
        assert h.residence_level(5) == "l3"


class TestPrefetchPath:
    def test_prefetch_latency_matches_residence(self):
        h = MemoryHierarchy()
        assert h.prefetch_fill(9) == 260  # from memory
        h.l1i.invalidate(9)
        assert h.prefetch_fill(9) == 12  # now in L2

    def test_prefetch_of_resident_line_is_free(self):
        h = MemoryHierarchy()
        h.fetch(9)
        assert h.prefetch_fill(9) == 0

    def test_prefetch_installs_into_l1(self):
        h = MemoryHierarchy()
        h.prefetch_fill(9)
        assert h.l1i.contains(9)

    def test_prefetch_counts_as_prefetch_fill(self):
        h = MemoryHierarchy()
        h.prefetch_fill(9)
        assert h.l1i.stats.prefetch_fills == 1


class TestDataAccess:
    def test_data_access_bypasses_l1i(self):
        h = MemoryHierarchy()
        h.data_access(1 << 41)
        assert not h.l1i.contains(1 << 41)
        assert h.l2.contains(1 << 41)
        assert h.l3.contains(1 << 41)

    def test_data_access_levels(self):
        h = MemoryHierarchy()
        line = 1 << 41
        assert h.data_access(line) == "memory"
        assert h.data_access(line) == "l2"
        h.l2.invalidate(line)
        assert h.data_access(line) == "l3"

    def test_data_pressure_evicts_code_from_l2(self):
        h = MemoryHierarchy()
        h.fetch(0)
        # Sweep enough distinct data lines through the L2 to displace
        # everything (L2 = 16384 lines).
        for offset in range(2 * h.params.l2.num_lines):
            h.data_access((1 << 41) + offset)
        assert not h.l2.contains(0)


class TestReset:
    def test_reset_clears_contents_and_stats(self):
        h = MemoryHierarchy()
        h.fetch(1)
        h.reset()
        assert not h.l1i.contains(1)
        assert h.l1i.stats.demand_misses == 0

    def test_custom_machine(self):
        m = MachineParams(l2_latency=20)
        h = MemoryHierarchy(m)
        h.fetch(1)
        h.l1i.invalidate(1)
        assert h.fetch(1).penalty == 20
