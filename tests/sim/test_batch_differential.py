"""Differential tests: plan-batched replay vs per-variant replay.

The batched backend (:func:`repro.sim.streaming.run_plan_batch` /
:func:`repro.sim.array_replay.batched_plan_replay`) evaluates a whole
variant set in one pass over the trace.  Its contract is exact: every
successfully batched variant must be ``==`` the same variant replayed
on its own — every statistic, the final residency of every cache
level, and the prefetch engine's runtime state — against both the
reference loop and the columnar backend, for every batch width and
shard budget.  A variant the batch cannot take must come back with a
traced reason and untouched stats, and rerunning it solo (fresh
objects) must produce the independent answer.

Inputs come from the seeded factories in ``tests/conftest.py``; the
seed alone reproduces any failure.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.sim.cpu import CoreSimulator
from repro.sim.datatraffic import make_data_traffic
from repro.sim.stats import SimStats
from repro.sim.streaming import run_plan_batch

from ..conftest import (
    adversarial_workloads,
    engine_state,
    hierarchy_state,
    make_random_plan,
    make_random_program,
    make_random_trace,
)

#: whole-trace, one block per shard, an awkward prime, one huge shard
SHARD_SIZES = (None, 1, 37, 10**9)

#: batch widths: degenerate singleton batches, pairs, the whole sweep
WIDTHS = (1, 2, None)


def _traffic(seed):
    if seed is None:
        return None
    return make_data_traffic(
        rate_per_instruction=0.05, working_set_kib=64, seed=seed
    )


def _core(program, plan, traffic_seed):
    return CoreSimulator(program, plan=plan, data_traffic=_traffic(traffic_seed))


def _snap(core):
    return (core.stats, hierarchy_state(core), engine_state(core))


def _solo(program, trace, plans, backend, warmup=0, shard_insns=None,
          traffic_seed=None):
    """Per-variant replays through the named sequential backend."""
    gate = (
        kernel.reference_path
        if backend == "reference"
        else kernel.force_numpy_kernel
    )
    snaps = []
    for plan in plans:
        with gate():
            core = _core(program, plan, traffic_seed)
            core.run(trace, warmup=warmup, shard_insns=shard_insns)
        snaps.append(_snap(core))
    return snaps


def _batched(program, trace, plans, width, warmup=0, shard_insns=None,
             traffic_seed=None):
    """Batched replays, the sweep cut into batches of *width*."""
    step = len(plans) if width is None else width
    snaps = []
    for lo in range(0, len(plans), step):
        chunk = plans[lo:lo + step]
        cores = [_core(program, plan, traffic_seed) for plan in chunk]
        # pin the kernel on: the batch requires it, and this helper's
        # assertions are about batching (REPRO_NUMPY_KERNEL=0 runs
        # would otherwise fall back with "kernel-disabled")
        with kernel.force_numpy_kernel():
            reasons = run_plan_batch(
                cores, trace, warmup=warmup, shard_insns=shard_insns
            )
        for core, reason in zip(cores, reasons):
            assert reason is None, f"unexpected fallback: {reason}"
            assert core.last_replay_backend == "columnar-plan-batch"
            snaps.append(_snap(core))
    return snaps


def _plan_set(rng, program):
    """A sweep-like variant set: same program, varying plan density."""
    return [
        make_random_plan(rng, program, n_sites=sites)
        for sites in (2, 5, 8, 11)
    ]


class TestBatchedMatchesSequential:
    """Batched == per-variant, across backends × widths × shards."""

    @pytest.mark.parametrize("shard_insns", SHARD_SIZES)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_width_and_shard_grid(self, width, shard_insns):
        rng = random.Random(4242)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=700, fanout=3)
        plans = _plan_set(rng, program)
        reference = _solo(program, trace, plans, "reference",
                          shard_insns=shard_insns)
        columnar = _solo(program, trace, plans, "columnar",
                         shard_insns=shard_insns)
        assert columnar == reference
        batched = _batched(program, trace, plans, width,
                           shard_insns=shard_insns)
        assert batched == reference

    @pytest.mark.parametrize("width", WIDTHS)
    def test_warmup_and_data_traffic(self, width):
        """The warmup reset and the data-traffic RNG stream both land
        identically inside a batch."""
        rng = random.Random(77)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=600, fanout=2)
        plans = _plan_set(rng, program)
        for warmup, shard_insns in ((100, None), (100, 53), (599, None)):
            reference = _solo(program, trace, plans, "reference",
                              warmup=warmup, shard_insns=shard_insns,
                              traffic_seed=999)
            batched = _batched(program, trace, plans, width, warmup=warmup,
                               shard_insns=shard_insns, traffic_seed=999)
            assert batched == reference, (warmup, shard_insns)


class TestFallbacks:
    """Ineligible variants bounce with a reason; the rest still batch."""

    def test_no_plan_and_dirty_engine_slots(self):
        rng = random.Random(11)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=500, fanout=3)
        good = make_random_plan(rng, program, n_sites=6)
        other = make_random_plan(rng, program, n_sites=3)

        dirty = _core(program, other, None)
        dirty.run(trace)  # engine state is no longer pristine

        cores = [
            _core(program, good, None),
            _core(program, None, None),  # no plan to batch
            dirty,
            _core(program, other, None),
        ]
        with kernel.force_numpy_kernel():
            reasons = run_plan_batch(cores, trace)
        assert reasons[0] is None
        assert reasons[1] == "no-plan"
        assert reasons[2] is not None
        assert reasons[3] is None

        # failed slots left their stats untouched
        assert cores[1].stats == SimStats()

        # surviving slots are still exact
        expected = _solo(program, trace, [good, other], "reference")
        assert [_snap(cores[0]), _snap(cores[3])] == expected

    def test_kernel_disabled_fails_every_slot(self):
        rng = random.Random(12)
        program = make_random_program(rng, n_blocks=24)
        trace = make_random_trace(rng, 24, length=200)
        plans = [make_random_plan(rng, program, n_sites=4) for _ in range(2)]
        cores = [_core(program, plan, None) for plan in plans]
        with kernel.reference_path():
            reasons = run_plan_batch(cores, trace)
        assert reasons == ["kernel-disabled", "kernel-disabled"]
        for core in cores:
            assert core.stats == SimStats()


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_batch_property(data):
    """Randomized plan sets — including ``None`` (fallback) slots,
    random widths, warmup and shard budgets — always reproduce the
    per-variant answers exactly; fallback slots rerun solo from fresh
    objects land on the independent answer too."""
    seed = data.draw(st.integers(0, 2**20), label="seed")
    rng = random.Random(seed)
    n_blocks = data.draw(st.sampled_from((12, 48, 96)), label="n_blocks")
    program = make_random_program(rng, n_blocks=n_blocks)
    trace = make_random_trace(
        rng, n_blocks,
        length=data.draw(st.sampled_from((300, 700)), label="length"),
        fanout=data.draw(st.sampled_from((1, 3, 8)), label="fanout"),
    )
    plans = [
        make_random_plan(rng, program, n_sites=rng.randint(1, 10))
        if data.draw(st.booleans(), label=f"has_plan_{i}")
        else None
        for i in range(data.draw(st.integers(1, 5), label="variants"))
    ]
    warmup = data.draw(st.sampled_from((0, 53)), label="warmup")
    shard_insns = data.draw(st.sampled_from((None, 29)), label="shard")
    traffic_seed = data.draw(st.sampled_from((None, 321)), label="traffic")

    expected = _solo(program, trace, plans, "reference", warmup=warmup,
                     shard_insns=shard_insns, traffic_seed=traffic_seed)

    cores = [_core(program, plan, traffic_seed) for plan in plans]
    with kernel.force_numpy_kernel():
        reasons = run_plan_batch(cores, trace, warmup=warmup,
                                 shard_insns=shard_insns)
    for i, (core, reason, plan) in enumerate(zip(cores, reasons, plans)):
        if plan is None:
            assert reason == "no-plan"
        else:
            assert reason is None, f"slot {i} fell back: {reason}"
        if reason is not None:
            # the fallback contract: rerun with fresh objects
            core = _core(program, plan, traffic_seed)
            core.run(trace, warmup=warmup, shard_insns=shard_insns)
        assert _snap(core) == expected[i], f"slot {i}"


@settings(max_examples=6, deadline=None)
@given(case=adversarial_workloads(), seed=st.integers(0, 2**16))
def test_adversarial_batch_property(case, seed):
    """The stress generators batch exactly too: a variant pair over a
    hash-saturating / Bloom-heavy / phase-changing app reproduces the
    per-variant reference answers (default LBR depth — the overflow
    bail-out has its own suite in ``tests/workloads``)."""
    name, app, trace = case
    rng = random.Random(seed)
    plans = [
        make_random_plan(rng, app.program, n_sites=rng.randint(2, 6))
        for _ in range(2)
    ]
    expected = _solo(app.program, trace, plans, "reference")
    cores = [_core(app.program, plan, None) for plan in plans]
    with kernel.force_numpy_kernel():
        reasons = run_plan_batch(cores, trace)
    assert reasons == [None, None], name
    assert [_snap(core) for core in cores] == expected, name
