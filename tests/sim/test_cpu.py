"""Core-simulator (replay loop) tests."""

import pytest

from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.cpu import CoreSimulator, TraceObserver, simulate
from repro.sim.params import MachineParams
from repro.sim.trace import BlockTrace

from ..conftest import make_program


class TestBasicReplay:
    def test_cycle_accounting_no_misses_is_compute_only(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3])
        stats = simulate(tiny_program, trace, ideal=True)
        instructions = trace.instruction_count(tiny_program)
        assert stats.cycles == pytest.approx(instructions / 2.0)
        assert stats.l1i_misses == 0

    def test_cold_misses_counted(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3])
        stats = simulate(tiny_program, trace)
        assert stats.l1i_misses == 4
        assert stats.miss_level_counts == {"memory": 4}

    def test_second_pass_hits(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3, 0, 1, 2, 3])
        stats = simulate(tiny_program, trace)
        assert stats.l1i_misses == 4
        assert stats.l1i_accesses == 8

    def test_stall_cycles_match_penalties(self, tiny_program):
        trace = BlockTrace([0])
        stats = simulate(tiny_program, trace)
        assert stats.frontend_stall_cycles == 260.0

    def test_ideal_faster_than_real(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3] * 4)
        real = simulate(tiny_program, trace)
        ideal = simulate(tiny_program, trace, ideal=True)
        assert ideal.cycles < real.cycles


class TestWarmup:
    def test_warmup_excludes_cold_misses(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3] * 5)
        stats = simulate(tiny_program, trace, warmup=4)
        assert stats.l1i_misses == 0
        assert stats.program_instructions == 16 * 16

    def test_warmup_zero_is_full_trace(self, tiny_program):
        trace = BlockTrace([0, 1])
        full = simulate(tiny_program, trace, warmup=0)
        assert full.program_instructions == 32

    def test_warmup_keeps_cache_state(self):
        program = make_program([64] * 8)
        trace = BlockTrace(list(range(8)) + [0, 1, 2, 3])
        stats = simulate(program, trace, warmup=8)
        # all lines were warmed -> steady-state region has no misses
        assert stats.l1i_misses == 0


class TestObserver:
    def test_block_and_miss_events(self, tiny_program):
        events = []

        class Recorder(TraceObserver):
            def on_block(self, index, block_id, cycle):
                events.append(("block", index, block_id))

            def on_miss(self, index, block_id, line, cycle):
                events.append(("miss", index, block_id))

        trace = BlockTrace([0, 1, 0])
        simulate(tiny_program, trace, observer=Recorder())
        blocks = [e for e in events if e[0] == "block"]
        misses = [e for e in events if e[0] == "miss"]
        assert len(blocks) == 3
        assert len(misses) == 2  # 0 and 1 cold-miss; second 0 hits

    def test_observer_cycles_monotonic(self, tiny_program):
        cycles = []

        class Recorder(TraceObserver):
            def on_block(self, index, block_id, cycle):
                cycles.append(cycle)

        simulate(tiny_program, BlockTrace([0, 1, 2, 3]), observer=Recorder())
        assert cycles == sorted(cycles)


class TestPrefetchedReplay:
    def test_timely_prefetch_removes_miss(self):
        # Block 0 executes, then a long gap, then block 5 misses.
        # Prefetching block 5's line at block 0 should hide it.
        program = make_program([64] * 6)
        filler = [0, 1, 2, 3] * 30
        trace = BlockTrace(filler + [5] + filler + [5])
        target_line = program.block(5).lines[0]
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=0, base_line=target_line))
        base = simulate(program, trace)
        fetched = simulate(program, trace, plan=plan)
        assert fetched.l1i_misses < base.l1i_misses
        assert fetched.prefetches_issued >= 1
        assert fetched.cycles < base.cycles

    def test_prefetch_instructions_charged(self, tiny_program):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=0, base_line=9999))
        trace = BlockTrace([0, 1] * 10)
        stats = simulate(tiny_program, trace, plan=plan)
        assert stats.prefetch_instructions_executed == 10
        # charged at issue width, not base IPC
        machine = MachineParams()
        expected = (
            stats.program_instructions / machine.base_ipc
            + 10 / machine.issue_width
        )
        assert stats.compute_cycles == pytest.approx(expected)

    def test_empty_plan_equals_no_plan(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3] * 3)
        with_plan = simulate(tiny_program, trace, plan=PrefetchPlan())
        without = simulate(tiny_program, trace)
        assert with_plan.cycles == without.cycles


class TestLatePrefetch:
    def test_late_prefetch_pays_only_remaining_latency(self):
        from repro.sim.frontend import FetchEngine
        from repro.sim.hierarchy import MemoryHierarchy
        from repro.sim.prefetch_engine import PrefetchEngine
        from repro.sim.stats import SimStats

        program = make_program([64] * 4)
        line3 = program.block(3).lines[0]
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=0, base_line=line3))
        hierarchy = MemoryHierarchy()
        stats = SimStats()
        engine = PrefetchEngine(hierarchy, plan, stats)
        fetch = FetchEngine(program, hierarchy, stats, engine)

        engine.execute_site(0, now=0.0)  # arrival at cycle 260
        stall = fetch.fetch_block(3, now=100.0)  # demanded mid-flight
        assert stats.late_prefetch_hits == 1
        assert stall == pytest.approx(160.0)  # only the remainder
        # a second fetch is a clean hit
        assert fetch.fetch_block(3, now=300.0) == 0.0
