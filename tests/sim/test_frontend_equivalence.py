"""Observer-variant equivalence and frontend behaviors.

The profiling path uses `_ObservingFetchEngine`; the evaluation path
uses the plain `FetchEngine`.  Timing and statistics must be
bit-identical between them, or profiles would describe a different
machine than the one being optimized.
"""

import pytest

from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.cpu import TraceObserver, simulate
from repro.sim.trace import BlockTrace
from repro.workloads.apps import build_app

from ..conftest import make_program


class _CountingObserver(TraceObserver):
    def __init__(self):
        self.blocks = 0
        self.misses = 0

    def on_block(self, index, block_id, cycle):
        self.blocks += 1

    def on_miss(self, index, block_id, line, cycle):
        self.misses += 1


def compare(program, trace, plan=None):
    plain = simulate(program, trace, plan=plan)
    observer = _CountingObserver()
    observed = simulate(program, trace, plan=plan, observer=observer)
    return plain, observed, observer


class TestObserverEquivalence:
    def test_identical_timing_without_plan(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3] * 5)
        plain, observed, observer = compare(tiny_program, trace)
        assert plain.cycles == observed.cycles
        assert plain.l1i_misses == observed.l1i_misses
        assert observer.blocks == len(trace)
        assert observer.misses == plain.l1i_misses

    def test_identical_timing_with_plan(self):
        program = make_program([64] * 10)
        trace = BlockTrace(list(range(10)) * 4)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=0, base_line=program.block(5).lines[0]
            )
        )
        plain, observed, _ = compare(program, trace, plan)
        assert plain.cycles == observed.cycles
        assert plain.prefetches_issued == observed.prefetches_issued
        assert (
            plain.frontend_stall_cycles == observed.frontend_stall_cycles
        )

    def test_identical_on_real_app(self, small_app):
        trace = small_app.trace(5000)
        plain, observed, _ = compare(small_app.program, trace)
        assert plain.cycles == pytest.approx(observed.cycles)
        assert plain.l1i_mpki == pytest.approx(observed.l1i_mpki)


class TestDeterminismAcrossRuns:
    def test_full_pipeline_bit_identical(self):
        app = build_app("finagle-http", scale=0.2)
        results = []
        for _ in range(2):
            trace = app.trace(6000)
            stats = simulate(
                app.program, trace, data_traffic=app.data_traffic()
            )
            results.append((stats.cycles, stats.l1i_misses))
        assert results[0] == results[1]

    def test_different_data_seed_changes_l2_contents(self):
        from repro.sim.cpu import CoreSimulator

        app = build_app("finagle-http", scale=0.2)
        trace = app.trace(6000)
        residents = []
        for seed in (1, 2):
            core = CoreSimulator(
                app.program, data_traffic=app.data_traffic(seed=seed)
            )
            core.run(trace)
            residents.append(frozenset(core.hierarchy.l2.resident_lines()))
        assert residents[0] != residents[1]
