"""Prefetch-engine tests: conditional firing, coalescing expansion,
in-flight tracking and false-positive accounting."""

from repro.core.bloom import LBRRuntimeHash
from repro.core.hashing import bit_position_table, context_mask
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.prefetch_engine import PrefetchEngine
from repro.sim.stats import SimStats


def make_engine(plan, tracker=None, track_exact=False):
    hierarchy = MemoryHierarchy()
    stats = SimStats()
    engine = PrefetchEngine(
        hierarchy, plan, stats, tracker=tracker, track_exact_context=track_exact
    )
    return engine, hierarchy, stats


def make_tracker(addresses, hash_bits=16):
    return LBRRuntimeHash(
        bit_position_table(addresses, hash_bits), hash_bits=hash_bits
    )


class TestUnconditional:
    def test_issues_to_hierarchy(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=50))
        engine, hierarchy, stats = make_engine(plan)
        executed = engine.execute_site(1, now=0.0)
        assert executed == 1
        assert stats.prefetches_issued == 1
        assert hierarchy.l1i.contains(50)

    def test_no_instrs_at_other_sites(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=50))
        engine, _, stats = make_engine(plan)
        assert engine.execute_site(2, now=0.0) == 0
        assert stats.prefetch_instructions_executed == 0

    def test_resident_line_not_reissued(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=50))
        engine, hierarchy, stats = make_engine(plan)
        hierarchy.fetch(50)
        engine.execute_site(1, now=0.0)
        assert stats.prefetches_issued == 0
        assert stats.prefetches_resident == 1

    def test_inflight_not_reissued(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=50))
        engine, _, stats = make_engine(plan)
        engine.execute_site(1, now=0.0)
        engine.inflight[50] = 500.0  # still in flight
        # line IS in L1 (filled at issue), so counted resident
        engine.execute_site(1, now=10.0)
        assert stats.prefetches_issued == 1

    def test_arrival_tracking(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=50))
        engine, _, _ = make_engine(plan)
        engine.execute_site(1, now=100.0)
        arrival = engine.arrival_of(50)
        assert arrival == 100.0 + 260  # memory fill latency
        assert engine.arrival_of(50) is None  # popped


class TestCoalescedExpansion:
    def test_bit_vector_expands_lines(self):
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(site_block=1, base_line=100, bit_vector=0b101)
        )
        engine, hierarchy, stats = make_engine(plan)
        engine.execute_site(1, now=0.0)
        assert hierarchy.l1i.contains(100)
        assert hierarchy.l1i.contains(101)
        assert hierarchy.l1i.contains(103)
        assert not hierarchy.l1i.contains(102)
        assert stats.prefetches_issued == 3
        assert stats.prefetch_instructions_executed == 1


class TestConditional:
    def test_fires_when_context_present(self):
        addresses = {10: 0x1000, 11: 0x2000}
        tracker = make_tracker(addresses)
        mask = context_mask([0x1000], 16)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=1, base_line=77, context_mask=mask, context_blocks=(10,)
            )
        )
        engine, hierarchy, stats = make_engine(plan, tracker)
        tracker.push(10)
        engine.execute_site(1, now=0.0)
        assert stats.prefetches_issued == 1
        assert hierarchy.l1i.contains(77)

    def test_suppressed_when_context_absent(self):
        addresses = {10: 0x1000, 11: 0x2000}
        tracker = make_tracker(addresses)
        mask = context_mask([0x1000], 16)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=1, base_line=77, context_mask=mask, context_blocks=(10,)
            )
        )
        engine, hierarchy, stats = make_engine(plan, tracker)
        tracker.push(11)  # different block, (very likely) different bit
        engine.execute_site(1, now=0.0)
        if stats.prefetches_suppressed:
            assert not hierarchy.l1i.contains(77)
            assert stats.prefetches_issued == 0
        # the instruction itself always executes
        assert stats.prefetch_instructions_executed == 1

    def test_no_false_negatives(self):
        """If every context block is in the LBR, the check passes."""
        addresses = {i: 0x1000 * (i + 1) for i in range(8)}
        tracker = make_tracker(addresses)
        blocks = (2, 5, 7)
        mask = context_mask([addresses[b] for b in blocks], 16)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=1, base_line=88, context_mask=mask, context_blocks=blocks
            )
        )
        engine, _, stats = make_engine(plan, tracker)
        for block in blocks:
            tracker.push(block)
        engine.execute_site(1, now=0.0)
        assert stats.prefetches_suppressed == 0
        assert stats.prefetches_issued == 1


class TestExactContextAccounting:
    def test_true_positive_counted(self):
        addresses = {10: 0x1000}
        tracker = make_tracker(addresses)
        mask = context_mask([0x1000], 16)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=1, base_line=77, context_mask=mask, context_blocks=(10,)
            )
        )
        engine, _, _ = make_engine(plan, tracker, track_exact=True)
        tracker.push(10)
        engine.retire_block(10)
        engine.execute_site(1, now=0.0)
        assert engine.true_positive_firings == 1
        assert engine.false_positive_firings == 0
        assert engine.conditional_false_positive_rate == 0.0

    def test_false_positive_counted_on_collision(self):
        # Find two blocks whose FNV bit positions collide at 4 bits.
        addresses = {i: 0x40 * i + 0x400000 for i in range(64)}
        from repro.core.hashing import context_bit_positions

        by_bit = {}
        collision = None
        for block, address in addresses.items():
            bit = context_bit_positions(address, 4)[0]
            if bit in by_bit:
                collision = (by_bit[bit], block)
                break
            by_bit[bit] = block
        assert collision is not None
        present, encoded = collision
        tracker = LBRRuntimeHash(bit_position_table(addresses, 4), hash_bits=4)
        mask = context_mask([addresses[encoded]], 4)
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(
                site_block=1,
                base_line=77,
                context_mask=mask,
                context_blocks=(encoded,),
                context_hash_bits=4,
            )
        )
        engine, _, _ = make_engine(plan, tracker, track_exact=True)
        tracker.push(present)
        engine.retire_block(present)
        engine.execute_site(1, now=0.0)
        assert engine.false_positive_firings == 1
        assert engine.conditional_false_positive_rate == 1.0
