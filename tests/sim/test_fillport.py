"""Fill-port bandwidth model tests (Table I memory bandwidth)."""

import pytest

from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.cpu import simulate
from repro.sim.hierarchy import FillPort, MemoryHierarchy
from repro.sim.params import MachineParams
from repro.sim.trace import BlockTrace

from ..conftest import make_program


class TestFillPort:
    def test_idle_port_is_pure_latency(self):
        port = FillPort(MachineParams())
        assert port.request(100.0, "l2") == 112.0

    def test_back_to_back_fills_queue(self):
        port = FillPort(MachineParams())
        first = port.request(0.0, "memory")
        second = port.request(0.0, "memory")
        assert first == 260.0
        # the second transfer starts after the first's occupancy
        assert second == pytest.approx(26.0 + 260.0)

    def test_port_frees_over_time(self):
        port = FillPort(MachineParams())
        port.request(0.0, "memory")  # busy until 26
        late = port.request(1000.0, "l2")
        assert late == 1012.0

    def test_l1_fills_are_free(self):
        machine = MachineParams()
        assert machine.fill_occupancy("l1") == 0.0

    def test_occupancy_ordering(self):
        machine = MachineParams()
        assert (
            machine.fill_occupancy("l2")
            < machine.fill_occupancy("l3")
            < machine.fill_occupancy("memory")
        )

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            MachineParams().fill_occupancy("l5")

    def test_reset(self):
        port = FillPort(MachineParams())
        port.request(0.0, "memory")
        port.reset()
        assert port.busy_until == 0.0


class TestBandwidthEffects:
    def test_prefetch_burst_delays_demand_fill(self):
        """A block that misses right after a large useless prefetch
        burst pays queuing delay on top of its miss latency."""
        program = make_program([64] * 12)
        trace = BlockTrace([0, 1])
        quiet = simulate(program, trace)

        # same trace, but block 0 carries a 9-line useless prefetch
        plan = PrefetchPlan()
        plan.add(
            PrefetchInstr(site_block=0, base_line=10_000, bit_vector=0xFF)
        )
        noisy = simulate(program, trace, plan=plan)
        assert noisy.frontend_stall_cycles > quiet.frontend_stall_cycles

    def test_baseline_without_prefetches_unaffected(self):
        """Pure demand misses serialize behind their own stalls, so
        the port never queues them — baseline timing is unchanged by
        the bandwidth model."""
        program = make_program([64] * 8)
        trace = BlockTrace(list(range(8)) * 2)
        stats = simulate(program, trace)
        # every cold miss pays exactly the memory penalty
        assert stats.frontend_stall_cycles == pytest.approx(8 * 260.0)

    def test_hierarchy_reset_clears_port(self):
        h = MemoryHierarchy()
        h.fill_port.request(0.0, "memory")
        h.reset()
        assert h.fill_port.busy_until == 0.0
