"""Randomized differential tests: sharded streaming vs whole-trace replay.

Sharding a replay must never change the answer.  For every backend
(reference loop, ideal, array, plan) and every shard budget — one
instruction per shard, an awkward prime, one shard for the whole
trace — the merged sharded run must be ``==`` the whole-trace run:
every statistic, every float, the final cache residency, and the
prefetch engine's runtime state.

Inputs come from the seeded factories in ``tests/conftest.py``; the
seed alone reproduces any failure.
"""

from __future__ import annotations

import random

import pytest

from repro import kernel
from repro.sim.columnar import columnar_view
from repro.sim.cpu import CoreSimulator
from repro.sim.datatraffic import make_data_traffic
from repro.sim.trace import (
    ShardedTrace,
    shard_bounds,
    trace_shard_bounds,
    write_trace_shards,
)

from ..conftest import (
    engine_state,
    hierarchy_state,
    make_random_plan,
    make_random_program,
    make_random_trace,
)

#: one instruction (every block its own shard), an awkward prime, and a
#: budget so large the whole trace fits in one shard.
SHARD_SIZES = (1, 37, 10**9)

BACKENDS = ("reference", "columnar")


def _gate(backend):
    return kernel.reference_path if backend == "reference" else (
        kernel.force_numpy_kernel
    )


def _replay(program, trace, backend, plan=None, ideal=False,
            traffic_seed=None, warmup=0, shard_insns=None):
    data_traffic = None
    if traffic_seed is not None:
        data_traffic = make_data_traffic(
            rate_per_instruction=0.05, working_set_kib=64, seed=traffic_seed
        )
    with _gate(backend)():
        core = CoreSimulator(
            program, plan=plan, data_traffic=data_traffic, ideal=ideal
        )
        stats = core.run(trace, warmup=warmup, shard_insns=shard_insns)
    return core, stats


def _assert_sharding_invisible(program, trace, backend, plan=None,
                               ideal=False, traffic_seed=None, warmup=0,
                               shard_sizes=SHARD_SIZES):
    """Whole-trace and every sharded budget agree exactly."""
    whole_core, whole_stats = _replay(
        program, trace, backend, plan=plan, ideal=ideal,
        traffic_seed=traffic_seed, warmup=warmup,
    )
    for shard_insns in shard_sizes:
        core, stats = _replay(
            program, trace, backend, plan=plan, ideal=ideal,
            traffic_seed=traffic_seed, warmup=warmup,
            shard_insns=shard_insns,
        )
        context = f"backend={backend} shard_insns={shard_insns}"
        assert stats == whole_stats, context
        assert core.last_replay_backend == whole_core.last_replay_backend, (
            context
        )
        if not ideal:
            assert hierarchy_state(core) == hierarchy_state(whole_core), (
                context
            )
        assert engine_state(core) == engine_state(whole_core), context
    return whole_stats


class TestBaseline:
    """No plan, no data traffic: the pure L1I replay."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fanout", (1, 4, 16))
    def test_fanout_sweep(self, backend, fanout):
        rng = random.Random(1000 + fanout)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=600, fanout=fanout)
        _assert_sharding_invisible(program, trace, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_blocks", (8, 160))
    def test_miss_density_sweep(self, backend, n_blocks):
        """Small programs fit the L1I (hits), large ones thrash."""
        rng = random.Random(2000 + n_blocks)
        program = make_random_program(rng, n_blocks=n_blocks)
        trace = make_random_trace(rng, n_blocks, length=600)
        _assert_sharding_invisible(program, trace, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warmup_crossing_shard_boundaries(self, backend):
        """The warmup reset lands mid-shard, at a boundary, and after
        the last shard — the telescoping merge must absorb all three."""
        rng = random.Random(3)
        program = make_random_program(rng, n_blocks=32)
        trace = make_random_trace(rng, 32, length=400)
        for warmup in (1, 37, 399):
            _assert_sharding_invisible(program, trace, backend,
                                       warmup=warmup)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ideal_mode(self, backend):
        rng = random.Random(4)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=500)
        _assert_sharding_invisible(program, trace, backend, ideal=True,
                                   warmup=50)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_data_traffic_rng_continuity(self, backend):
        """The data-traffic model's Mersenne Twister must advance
        identically across shard boundaries."""
        rng = random.Random(5)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=500)
        _assert_sharding_invisible(program, trace, backend,
                                   traffic_seed=12345)


class TestPlans:
    """Plan-bearing replay: engine state crosses shard boundaries."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_sites", (4, 12))
    def test_plan_density_sweep(self, backend, n_sites):
        rng = random.Random(6000 + n_sites)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=600, fanout=3)
        plan = make_random_plan(rng, program, n_sites=n_sites)
        _assert_sharding_invisible(program, trace, backend, plan=plan)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plan_with_warmup_and_traffic(self, backend):
        rng = random.Random(7)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=700, fanout=2)
        plan = make_random_plan(rng, program, n_sites=8)
        _assert_sharding_invisible(program, trace, backend, plan=plan,
                                   traffic_seed=999, warmup=100)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_sweep(self, seed):
        """Eight fully random configurations across both backends."""
        rng = random.Random(8000 + seed)
        n_blocks = rng.choice((12, 48, 120))
        program = make_random_program(rng, n_blocks=n_blocks)
        trace = make_random_trace(
            rng, n_blocks, length=rng.choice((300, 800)),
            fanout=rng.choice((1, 2, 4, 16)),
        )
        plan = make_random_plan(rng, program, n_sites=rng.randint(0, 10))
        warmup = rng.choice((0, 53))
        for backend in BACKENDS:
            _assert_sharding_invisible(program, trace, backend, plan=plan,
                                       warmup=warmup)


class TestShardCut:
    """The greedy instruction-budget cut itself."""

    @pytest.mark.parametrize("seed", range(4))
    def test_python_and_columnar_cuts_agree(self, seed):
        rng = random.Random(9000 + seed)
        program = make_random_program(rng, n_blocks=40)
        trace = make_random_trace(rng, 40, length=500)
        view = columnar_view(program)
        rows = view.trace_rows(trace)
        for shard_insns in (1, 7, 37, 1000, 10**9):
            expected = trace_shard_bounds(trace, program, shard_insns)
            assert view.shard_bounds(rows, shard_insns) == expected

    def test_cut_invariants(self):
        rng = random.Random(10)
        counts = [rng.randint(1, 50) for _ in range(300)]
        bounds = shard_bounds(counts, 100)
        # contiguous cover of the whole trace
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(counts)
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        # every shard except possibly the last meets the budget
        for start, stop in bounds[:-1]:
            assert sum(counts[start:stop]) >= 100

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            shard_bounds([1, 2, 3], 0)


class TestOnDiskShards:
    """write_trace_shards / ShardedTrace round trip and replay."""

    def test_round_trip_materializes_identically(self, tmp_path):
        rng = random.Random(11)
        program = make_random_program(rng, n_blocks=32)
        trace = make_random_trace(rng, 32, length=400)
        trace.metadata["note"] = "round-trip"
        sharded = write_trace_shards(trace, program, tmp_path, 50)
        reread = ShardedTrace(tmp_path)
        assert reread.num_shards == sharded.num_shards
        assert reread.bounds == trace_shard_bounds(trace, program, 50)
        materialized = reread.materialize()
        assert materialized.block_ids == trace.block_ids
        assert materialized.metadata == trace.metadata

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_on_disk_replay_with_at_least_eight_shards(
        self, backend, tmp_path
    ):
        """The acceptance bar: a >= 8-shard on-disk trace replays
        bit-identically to the in-memory whole trace, per backend."""
        rng = random.Random(12)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=800, fanout=3)
        plan = make_random_plan(rng, program, n_sites=6)
        total_insns = sum(
            program.block(b).instruction_count for b in trace.block_ids
        )
        sharded = write_trace_shards(
            trace, program, tmp_path, total_insns // 10
        )
        assert sharded.num_shards >= 8

        whole_core, whole_stats = _replay(program, trace, backend, plan=plan)
        with _gate(backend)():
            core = CoreSimulator(program, plan=plan)
            stats = core.run(sharded)
        assert stats == whole_stats
        assert core.last_replay_backend == whole_core.last_replay_backend
        assert hierarchy_state(core) == hierarchy_state(whole_core)
        assert engine_state(core) == engine_state(whole_core)
