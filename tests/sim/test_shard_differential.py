"""Randomized differential tests: sharded streaming vs whole-trace replay.

Sharding a replay must never change the answer.  For every backend
(reference loop, ideal, array, plan) and every shard budget — one
instruction per shard, an awkward prime, one shard for the whole
trace — the merged sharded run must be ``==`` the whole-trace run:
every statistic, every float, the final cache residency, and the
prefetch engine's runtime state.

Inputs come from the seeded factories in ``tests/conftest.py``; the
seed alone reproduces any failure.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.sim.columnar import columnar_view
from repro.sim.cpu import CoreSimulator
from repro.sim.datatraffic import make_data_traffic
from repro.sim.parallel import ParallelConfig, compose_lru_state
from repro.sim.trace import (
    ShardedTrace,
    shard_bounds,
    trace_shard_bounds,
    write_trace_shards,
)

from ..conftest import (
    adversarial_workloads,
    engine_state,
    hierarchy_state,
    make_random_plan,
    make_random_program,
    make_random_trace,
)

#: one instruction (every block its own shard), an awkward prime, and a
#: budget so large the whole trace fits in one shard.
SHARD_SIZES = (1, 37, 10**9)

BACKENDS = ("reference", "columnar")


def _gate(backend):
    return kernel.reference_path if backend == "reference" else (
        kernel.force_numpy_kernel
    )


def _replay(program, trace, backend, plan=None, ideal=False,
            traffic_seed=None, warmup=0, shard_insns=None, parallel=None):
    data_traffic = None
    if traffic_seed is not None:
        data_traffic = make_data_traffic(
            rate_per_instruction=0.05, working_set_kib=64, seed=traffic_seed
        )
    with _gate(backend)():
        core = CoreSimulator(
            program, plan=plan, data_traffic=data_traffic, ideal=ideal
        )
        stats = core.run(trace, warmup=warmup, shard_insns=shard_insns,
                         parallel=parallel)
    return core, stats


def _assert_sharding_invisible(program, trace, backend, plan=None,
                               ideal=False, traffic_seed=None, warmup=0,
                               shard_sizes=SHARD_SIZES):
    """Whole-trace and every sharded budget agree exactly."""
    whole_core, whole_stats = _replay(
        program, trace, backend, plan=plan, ideal=ideal,
        traffic_seed=traffic_seed, warmup=warmup,
    )
    for shard_insns in shard_sizes:
        core, stats = _replay(
            program, trace, backend, plan=plan, ideal=ideal,
            traffic_seed=traffic_seed, warmup=warmup,
            shard_insns=shard_insns,
        )
        context = f"backend={backend} shard_insns={shard_insns}"
        assert stats == whole_stats, context
        assert core.last_replay_backend == whole_core.last_replay_backend, (
            context
        )
        if not ideal:
            assert hierarchy_state(core) == hierarchy_state(whole_core), (
                context
            )
        assert engine_state(core) == engine_state(whole_core), context
    return whole_stats


class TestBaseline:
    """No plan, no data traffic: the pure L1I replay."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fanout", (1, 4, 16))
    def test_fanout_sweep(self, backend, fanout):
        rng = random.Random(1000 + fanout)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=600, fanout=fanout)
        _assert_sharding_invisible(program, trace, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_blocks", (8, 160))
    def test_miss_density_sweep(self, backend, n_blocks):
        """Small programs fit the L1I (hits), large ones thrash."""
        rng = random.Random(2000 + n_blocks)
        program = make_random_program(rng, n_blocks=n_blocks)
        trace = make_random_trace(rng, n_blocks, length=600)
        _assert_sharding_invisible(program, trace, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warmup_crossing_shard_boundaries(self, backend):
        """The warmup reset lands mid-shard, at a boundary, and after
        the last shard — the telescoping merge must absorb all three."""
        rng = random.Random(3)
        program = make_random_program(rng, n_blocks=32)
        trace = make_random_trace(rng, 32, length=400)
        for warmup in (1, 37, 399):
            _assert_sharding_invisible(program, trace, backend,
                                       warmup=warmup)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ideal_mode(self, backend):
        rng = random.Random(4)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=500)
        _assert_sharding_invisible(program, trace, backend, ideal=True,
                                   warmup=50)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_data_traffic_rng_continuity(self, backend):
        """The data-traffic model's Mersenne Twister must advance
        identically across shard boundaries."""
        rng = random.Random(5)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=500)
        _assert_sharding_invisible(program, trace, backend,
                                   traffic_seed=12345)


class TestPlans:
    """Plan-bearing replay: engine state crosses shard boundaries."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_sites", (4, 12))
    def test_plan_density_sweep(self, backend, n_sites):
        rng = random.Random(6000 + n_sites)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=600, fanout=3)
        plan = make_random_plan(rng, program, n_sites=n_sites)
        _assert_sharding_invisible(program, trace, backend, plan=plan)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plan_with_warmup_and_traffic(self, backend):
        rng = random.Random(7)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=700, fanout=2)
        plan = make_random_plan(rng, program, n_sites=8)
        _assert_sharding_invisible(program, trace, backend, plan=plan,
                                   traffic_seed=999, warmup=100)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_sweep(self, seed):
        """Eight fully random configurations across both backends."""
        rng = random.Random(8000 + seed)
        n_blocks = rng.choice((12, 48, 120))
        program = make_random_program(rng, n_blocks=n_blocks)
        trace = make_random_trace(
            rng, n_blocks, length=rng.choice((300, 800)),
            fanout=rng.choice((1, 2, 4, 16)),
        )
        plan = make_random_plan(rng, program, n_sites=rng.randint(0, 10))
        warmup = rng.choice((0, 53))
        for backend in BACKENDS:
            _assert_sharding_invisible(program, trace, backend, plan=plan,
                                       warmup=warmup)


class TestShardCut:
    """The greedy instruction-budget cut itself."""

    @pytest.mark.parametrize("seed", range(4))
    def test_python_and_columnar_cuts_agree(self, seed):
        rng = random.Random(9000 + seed)
        program = make_random_program(rng, n_blocks=40)
        trace = make_random_trace(rng, 40, length=500)
        view = columnar_view(program)
        rows = view.trace_rows(trace)
        for shard_insns in (1, 7, 37, 1000, 10**9):
            expected = trace_shard_bounds(trace, program, shard_insns)
            assert view.shard_bounds(rows, shard_insns) == expected

    def test_cut_invariants(self):
        rng = random.Random(10)
        counts = [rng.randint(1, 50) for _ in range(300)]
        bounds = shard_bounds(counts, 100)
        # contiguous cover of the whole trace
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(counts)
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        # every shard except possibly the last meets the budget
        for start, stop in bounds[:-1]:
            assert sum(counts[start:stop]) >= 100

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            shard_bounds([1, 2, 3], 0)


#: The four replay backend configurations: the pure-Python reference
#: loop, the no-plan columnar kernel, the columnar-ideal path, and the
#: plan-bearing columnar path (exact mode serves the two no-plan
#: columnar ones in parallel; the rest must fall back unchanged).
PARALLEL_CONFIGS = {
    "reference": dict(backend="reference"),
    "columnar": dict(backend="columnar", traffic_seed=321, warmup=60),
    "columnar-ideal": dict(backend="columnar", ideal=True, warmup=60),
    "columnar-plan": dict(backend="columnar", plan=True),
}

#: 1 worker, 2 workers, and "many" relative to the 2-3 shard budgets.
WORKER_COUNTS = (1, 2, 4)


class TestParallel:
    """Parallel-vs-sequential differential sweep (PR 6 tentpole).

    Exact mode must be ``==`` sequential sharded replay — statistics,
    final cache residency and engine state — whether it runs the
    two-round stitched executor or falls back (plan backends,
    disabled kernel, single shard).  Tolerant mode must respect its
    documented contract: exact instruction/access counters and an L1
    miss over-count bounded by ``(num_shards - 1) * capacity``.
    """

    def _case(self, config_name, length=360):
        spec = dict(PARALLEL_CONFIGS[config_name])
        rng = random.Random(hash(config_name) % 10_000)
        program = make_random_program(rng, n_blocks=40)
        trace = make_random_trace(rng, 40, length=length, fanout=3)
        if spec.pop("plan", False):
            spec["plan"] = make_random_plan(rng, program, n_sites=6)
        return program, trace, spec

    @pytest.mark.parametrize("config_name", sorted(PARALLEL_CONFIGS))
    def test_exact_bit_identity_sweep(self, config_name):
        """shard sizes {1, 37, whole} x worker counts {1, 2, 4}."""
        program, trace, spec = self._case(config_name)
        ideal = spec.get("ideal", False)
        for shard_insns in SHARD_SIZES:
            seq_core, seq_stats = _replay(
                program, trace, shard_insns=shard_insns, **spec
            )
            for workers in WORKER_COUNTS:
                core, stats = _replay(
                    program, trace, shard_insns=shard_insns,
                    parallel=ParallelConfig(mode="exact", workers=workers),
                    **spec,
                )
                context = (
                    f"config={config_name} shard_insns={shard_insns} "
                    f"workers={workers}"
                )
                assert stats == seq_stats, context
                assert core.last_replay_backend == (
                    seq_core.last_replay_backend
                ), context
                if not ideal:
                    assert hierarchy_state(core) == hierarchy_state(
                        seq_core
                    ), context
                assert engine_state(core) == engine_state(seq_core), context

    @pytest.mark.parametrize("config_name", sorted(PARALLEL_CONFIGS))
    def test_tolerant_contract(self, config_name):
        """Exact counter fields match; L1 misses stay within the
        documented per-boundary cold-miss bound."""
        program, trace, spec = self._case(config_name)
        shard_insns = 37
        seq_core, seq_stats = _replay(
            program, trace, shard_insns=shard_insns, **spec
        )
        core, stats = _replay(
            program, trace, shard_insns=shard_insns,
            parallel=ParallelConfig(mode="tolerant", workers=2),
            **spec,
        )
        assert stats.program_instructions == seq_stats.program_instructions
        assert stats.l1i_accesses == seq_stats.l1i_accesses
        assert stats.prefetch_instructions_executed == (
            seq_stats.prefetch_instructions_executed
        )
        num_shards = len(trace_shard_bounds(trace, program, shard_insns))
        geometry = seq_core.machine.l1i
        bound = (num_shards - 1) * geometry.num_sets * geometry.ways
        assert abs(stats.l1i_misses - seq_stats.l1i_misses) <= bound
        if spec.get("plan") is None and not spec.get("ideal", False):
            # pure LRU: a cold boundary can only ever add misses
            assert stats.l1i_misses >= seq_stats.l1i_misses

    def test_single_shard_falls_back_to_sequential(self):
        """A one-shard trace never pays for a pool."""
        rng = random.Random(77)
        program = make_random_program(rng, n_blocks=24)
        trace = make_random_trace(rng, 24, length=200)
        seq_core, seq_stats = _replay(
            program, trace, "columnar", shard_insns=10**9
        )
        core, stats = _replay(
            program, trace, "columnar", shard_insns=10**9,
            parallel=ParallelConfig(mode="exact", workers=4),
        )
        assert stats == seq_stats
        assert hierarchy_state(core) == hierarchy_state(seq_core)

    @pytest.mark.parametrize("mode", ("exact", "tolerant"))
    def test_on_disk_sharded_trace(self, mode, tmp_path):
        """Workers consume the on-disk shard format directly."""
        rng = random.Random(88)
        program = make_random_program(rng, n_blocks=40)
        trace = make_random_trace(rng, 40, length=500, fanout=3)
        total = sum(
            program.block(b).instruction_count for b in trace.block_ids
        )
        sharded = write_trace_shards(trace, program, tmp_path, total // 8)
        _seq_core, seq_stats = _replay(
            program, trace, "columnar", shard_insns=total // 8
        )
        with kernel.force_numpy_kernel():
            core = CoreSimulator(program)
            stats = core.run(
                sharded, parallel=ParallelConfig(mode=mode, workers=2)
            )
        if mode == "exact":
            assert stats == seq_stats
        else:
            assert stats.program_instructions == (
                seq_stats.program_instructions
            )
            assert stats.l1i_accesses == seq_stats.l1i_accesses

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ParallelConfig(mode="sloppy")


class TestComposeLRUState:
    """The stitching law against the real per-access LRU sweep."""

    @staticmethod
    def _summary_of(lines, sets, ways):
        """A shard's per-set distinct-lines-by-last-access summary,
        built naively (the worker builds it vectorized)."""
        per_set = {}
        for line, set_index in zip(lines, sets):
            bucket = per_set.setdefault(set_index, [])
            if line in bucket:
                bucket.remove(line)
            bucket.append(line)
        return [[s, bucket[-ways:]] for s, bucket in per_set.items()]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_lru_stream_exactly(self, seed):
        """Composing a shard's summary onto any start state yields the
        same end state — same lines, same recency order, same dict
        insertion order — as streaming every access through the LRU."""
        from repro.sim.array_replay import _lru_stream

        rng = random.Random(400 + seed)
        num_sets, ways = 8, rng.choice((2, 4))
        state = {}
        chunks = []
        for _ in range(4):
            lines = [rng.randrange(64) for _ in range(rng.randint(1, 120))]
            chunks.append(lines)
        for lines in chunks:
            sets = [line % num_sets for line in lines]
            _hits, _evicts, streamed = _lru_stream(
                lines, sets, ways,
                {k: dict(v) for k, v in state.items()},
            )
            composed = compose_lru_state(
                state, self._summary_of(lines, sets, ways), ways
            )
            assert {
                k: list(v) for k, v in streamed.items() if v
            } == {k: list(v) for k, v in composed.items() if v}
            state = composed

    def test_empty_summary_is_identity(self):
        state = {0: {5: None, 9: None}}
        assert compose_lru_state(state, [], 4) == state

    def test_pure_no_input_mutation(self):
        state = {0: {1: None, 2: None}}
        before = {k: list(v) for k, v in state.items()}
        compose_lru_state(state, [[0, [3, 4]], [1, [7]]], 2)
        assert {k: list(v) for k, v in state.items()} == before


class TestWorkerRoundsInProcess:
    """The exact-mode round tasks, run in this process (no pool).

    These call the very functions the pool dispatches —
    ``_init_worker`` plus the four ``_task_*`` rounds — directly, so
    the round logic is (a) checked against a sequential replay and the
    naive summary oracle and (b) visible to coverage, which cannot see
    into forked pool workers.
    """

    @pytest.fixture()
    def rig(self, tmp_path):
        from repro.sim import parallel

        rng = random.Random(424242)
        program = make_random_program(rng, n_blocks=64)
        trace = make_random_trace(rng, 64, length=500, fanout=3)
        total = sum(
            program.block(b).instruction_count for b in trace.block_ids
        )
        sharded = write_trace_shards(trace, program, tmp_path, total // 6)
        assert sharded.num_shards >= 4
        with kernel.force_numpy_kernel():
            core = CoreSimulator(program)
            parallel._init_worker(
                parallel.pool_payload(core, tmp_path, "exact", 64)
            )
            yield parallel, core, program, trace, sharded

    @staticmethod
    def _chain(parallel, machine, num_shards, resets):
        """Drive all four rounds in-process, exactly as the parent
        does: compose each level's start states between rounds."""
        data = ([], [])
        l1_states, state = {}, {}
        for index in range(num_shards):
            l1_states[index] = state
            state = compose_lru_state(
                state, parallel._task_l1_summary(index), machine.l1i.ways
            )
        l1_final = state
        r2 = [
            parallel._task_l1_scan(
                index, l1_states[index], data, resets[index]
            )
            for index in range(num_shards)
        ]
        l2_states, state = {}, {}
        for index, out in enumerate(r2):
            l2_states[index] = state
            state = compose_lru_state(
                state, out["l2_summary"], machine.l2.ways
            )
        l2_final = state
        r3 = [
            parallel._task_l2_scan(
                index, l2_states[index], r2[index]["l1_hits"], data,
                resets[index],
            )
            for index in range(num_shards)
        ]
        l3_states, state = {}, {}
        for index, out in enumerate(r3):
            l3_states[index] = state
            state = compose_lru_state(
                state, out["l3_summary"], machine.l3.ways
            )
        l3_final = state
        r4 = [
            parallel._task_l3_scan(
                index, l3_states[index], r2[index]["l1_hits"],
                r3[index]["l2_hits"], data, resets[index],
            )
            for index in range(num_shards)
        ]
        return r2, r3, r4, (l1_final, l2_final, l3_final)

    @staticmethod
    def _fold(r2, r3, r4, resets):
        """Apply each shard's CarryUpdate onto a bare counter carry."""
        from types import SimpleNamespace

        from repro.sim.stats import CarryUpdate

        carry = SimpleNamespace(
            l1_dh=0, l1_dm=0, l1_ev=0, l2_dh=0, l2_dm=0, l2_ev=0,
            l3_dh=0, l3_dm=0, l3_ev=0, l1i_accesses=0, l1i_misses=0,
            program_instructions=0, miss_level_counts={},
        )
        for index, (out2, out3, out4) in enumerate(zip(r2, r3, r4)):
            CarryUpdate.combine(
                resets[index] is not None,
                (out2["counters"], out3["counters"], out4["counters"]),
                out4["miss_levels"],
            ).apply(carry)
        return carry

    def test_l1_summary_matches_naive_oracle(self, rig):
        parallel, core, _program, _trace, sharded = rig
        geom = core.machine.l1i
        for index in range(sharded.num_shards):
            l1_lines = parallel._shard_gather(index)[4]
            naive = TestComposeLRUState._summary_of(
                l1_lines.tolist(),
                (l1_lines % geom.num_sets).tolist(),
                geom.ways,
            )
            vectorized = parallel._task_l1_summary(index)
            assert {s: tuple(b) for s, b in vectorized} == {
                s: tuple(b) for s, b in naive
            }, f"shard {index}"

    def test_shard_l2_stream_is_the_l1_miss_stream(self, rig):
        import numpy as np

        from repro.sim.array_replay import _flags

        parallel, _core, _program, _trace, sharded = rig
        machine = _core.machine
        num = sharded.num_shards
        resets = {index: None for index in range(num)}
        r2, _r3, _r4, _finals = self._chain(parallel, machine, num, resets)
        for index in range(num):
            hits = _flags(r2[index]["l1_hits"])
            _rows, l2_lines, l2_blocks, l2_is_instr = (
                parallel._shard_l2_stream(index, r2[index]["l1_hits"],
                                          ([], []))
            )
            # no data model: the L2 stream is exactly the L1 misses
            assert bool(l2_is_instr.all())
            assert len(l2_lines) == int((~hits).sum())
            assert (np.diff(l2_blocks) >= 0).all(), "merge order broken"

    def test_round_chain_reproduces_sequential_accounting(self, rig):
        parallel, core, program, trace, sharded = rig
        machine = core.machine
        num = sharded.num_shards
        resets = {index: None for index in range(num)}
        seq_core, seq_stats = _replay(program, trace, "columnar")
        r2, r3, r4, finals = self._chain(parallel, machine, num, resets)
        carry = self._fold(r2, r3, r4, resets)

        assert carry.l1i_accesses == seq_stats.l1i_accesses
        assert carry.l1i_misses == seq_stats.l1i_misses
        assert carry.program_instructions == seq_stats.program_instructions
        assert carry.miss_level_counts == seq_stats.miss_level_counts
        hier = seq_core.hierarchy
        for prefix, cache in (("l1", hier.l1i), ("l2", hier.l2),
                              ("l3", hier.l3)):
            assert getattr(carry, f"{prefix}_dh") == cache.stats.demand_hits
            assert getattr(carry, f"{prefix}_dm") == cache.stats.demand_misses
            assert getattr(carry, f"{prefix}_ev") == cache.stats.evictions

        # the composed end states are the sequential residency
        resident = hierarchy_state(seq_core)
        for level, final in zip(("l1i", "l2", "l3"), finals):
            composed = {
                s: list(reversed(list(d))) for s, d in final.items() if d
            }
            expected = {
                s: lines for s, lines in resident[level].items() if lines
            }
            assert composed == expected, level

    def test_ideal_task_sums_shard_columns(self, rig):
        parallel, _core, program, _trace, sharded = rig
        ids = sharded.shard(0).block_ids
        lines, instructions = parallel._task_ideal(0, None)
        assert instructions == sum(
            program.block(b).instruction_count for b in ids
        )
        assert lines == sum(len(program.lines_of(b)) for b in ids)
        cut = len(ids) // 2
        post_lines, post_instructions = parallel._task_ideal(0, cut)
        assert post_instructions == sum(
            program.block(b).instruction_count for b in ids[cut:]
        )
        assert post_lines == sum(len(program.lines_of(b)) for b in ids[cut:])

    def test_tolerant_task_first_shard_is_cold_exact(self, rig):
        parallel, _core, program, _trace, sharded = rig
        ids = sharded.shard(0).block_ids
        out = parallel._task_tolerant(0, None)
        # shard 0 has no warm-up prefix: its tolerant replay is just a
        # cold exact replay of the shard
        assert out["l1i_accesses"] == sum(
            len(program.lines_of(b)) for b in ids
        )
        assert out["backend"] == "columnar"
        assert sum(out["miss_levels"].values()) == out["l1i_misses"]

    def test_pool_task_entry_times_and_traces(self, rig):
        parallel, *_ = rig
        result, seconds, events = parallel._pool_task("ideal", (0, None))
        assert seconds >= 0
        assert events is None, "no tracer, no shipped spans"
        parallel._W["tracing"] = True
        try:
            traced, _seconds, events = parallel._pool_task("ideal", (0, None))
        finally:
            parallel._W["tracing"] = False
        assert traced == result
        assert events, "worker spans recorded for parent absorption"

    def test_reset_counters_match_sequential_warmup(self, rig):
        parallel, core, program, trace, sharded = rig
        machine = core.machine
        num = sharded.num_shards
        # land the warmup reset strictly inside shard 1, exactly as
        # the driver computes the per-shard local reset index
        start, stop = sharded.bounds[1]
        eff = start + (stop - start) // 2
        resets = {
            index: eff - s if s <= eff < e else None
            for index, (s, e) in enumerate(sharded.bounds)
        }
        _seq_core, seq_stats = _replay(
            program, trace, "columnar", warmup=eff
        )
        r2, r3, r4, _finals = self._chain(parallel, machine, num, resets)
        carry = self._fold(r2, r3, r4, resets)
        assert carry.l1i_accesses == seq_stats.l1i_accesses
        assert carry.l1i_misses == seq_stats.l1i_misses
        assert carry.program_instructions == seq_stats.program_instructions
        assert carry.miss_level_counts == seq_stats.miss_level_counts


class TestOnDiskShards:
    """write_trace_shards / ShardedTrace round trip and replay."""

    def test_round_trip_materializes_identically(self, tmp_path):
        rng = random.Random(11)
        program = make_random_program(rng, n_blocks=32)
        trace = make_random_trace(rng, 32, length=400)
        trace.metadata["note"] = "round-trip"
        sharded = write_trace_shards(trace, program, tmp_path, 50)
        reread = ShardedTrace(tmp_path)
        assert reread.num_shards == sharded.num_shards
        assert reread.bounds == trace_shard_bounds(trace, program, 50)
        materialized = reread.materialize()
        assert materialized.block_ids == trace.block_ids
        assert materialized.metadata == trace.metadata

    def test_shard_array_matches_shard(self, tmp_path):
        """The memory-mapped column view agrees with the materialized
        BlockTrace for every shard."""
        rng = random.Random(13)
        program = make_random_program(rng, n_blocks=32)
        trace = make_random_trace(rng, 32, length=300)
        sharded = write_trace_shards(trace, program, tmp_path, 40)
        for index in range(sharded.num_shards):
            assert (
                sharded.shard_array(index).tolist()
                == sharded.shard(index).block_ids
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_on_disk_replay_with_at_least_eight_shards(
        self, backend, tmp_path
    ):
        """The acceptance bar: a >= 8-shard on-disk trace replays
        bit-identically to the in-memory whole trace, per backend."""
        rng = random.Random(12)
        program = make_random_program(rng, n_blocks=48)
        trace = make_random_trace(rng, 48, length=800, fanout=3)
        plan = make_random_plan(rng, program, n_sites=6)
        total_insns = sum(
            program.block(b).instruction_count for b in trace.block_ids
        )
        sharded = write_trace_shards(
            trace, program, tmp_path, total_insns // 10
        )
        assert sharded.num_shards >= 8

        whole_core, whole_stats = _replay(program, trace, backend, plan=plan)
        with _gate(backend)():
            core = CoreSimulator(program, plan=plan)
            stats = core.run(sharded)
        assert stats == whole_stats
        assert core.last_replay_backend == whole_core.last_replay_backend
        assert hierarchy_state(core) == hierarchy_state(whole_core)
        assert engine_state(core) == engine_state(whole_core)


class TestAdversarialApps:
    """The zoo's stress generators run through the same invariants.

    Hash saturation, Bloom-heavy miss storms and phase-changing call
    chains are exactly the inputs that would expose a sharding or
    parallelism bug the benign factories miss — so the randomized
    sweep samples them from the shared conftest strategy."""

    @settings(max_examples=8, deadline=None)
    @given(case=adversarial_workloads(), seed=st.integers(0, 2**16))
    def test_sharding_invisible(self, case, seed):
        name, app, trace = case
        plan = make_random_plan(random.Random(seed), app.program, n_sites=5)
        for backend in BACKENDS:
            _assert_sharding_invisible(
                app.program, trace, backend, plan=plan,
                shard_sizes=(37, 10**9),
            )

    @settings(max_examples=6, deadline=None)
    @given(case=adversarial_workloads())
    def test_parallel_exact_bit_identity(self, case):
        name, app, trace = case
        seq_core, seq_stats = _replay(
            app.program, trace, "columnar", shard_insns=37
        )
        core, stats = _replay(
            app.program, trace, "columnar", shard_insns=37,
            parallel=ParallelConfig(mode="exact", workers=2),
        )
        assert stats == seq_stats, name
        assert hierarchy_state(core) == hierarchy_state(seq_core), name
        assert engine_state(core) == engine_state(seq_core), name
