"""Program / BlockInfo / BlockTrace tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import BlockInfo, BlockTrace, Program

from ..conftest import make_program


class TestBlockInfo:
    def test_single_line_block(self):
        block = BlockInfo(0, 0x1000, 32, 8)
        assert block.lines == (0x1000 // 64,)

    def test_block_spanning_two_lines(self):
        block = BlockInfo(0, 0x1000 + 48, 32, 8)
        assert len(block.lines) == 2

    def test_line_aligned_block_exactly_one_line(self):
        block = BlockInfo(0, 0x1000, 64, 16)
        assert len(block.lines) == 1

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BlockInfo(0, 0, 0, 1)
        with pytest.raises(ValueError):
            BlockInfo(0, 0, 4, 0)

    @given(address=st.integers(0, 1 << 30), size=st.integers(1, 4096))
    @settings(max_examples=80)
    def test_lines_cover_block_extent(self, address, size):
        block = BlockInfo(0, address, size, 1)
        lines = block.lines
        assert lines[0] == address >> 6
        assert lines[-1] == (address + size - 1) >> 6
        assert list(lines) == list(range(lines[0], lines[-1] + 1))


class TestProgram:
    def test_len_and_lookup(self, tiny_program):
        assert len(tiny_program) == 4
        assert tiny_program.block(2).block_id == 2
        assert 3 in tiny_program
        assert 99 not in tiny_program

    def test_text_bytes(self, tiny_program):
        assert tiny_program.text_bytes == 256

    def test_footprint_lines(self, tiny_program):
        assert tiny_program.footprint_lines == 4
        assert tiny_program.footprint_bytes == 256

    def test_rejects_duplicate_ids(self):
        blocks = [BlockInfo(0, 0, 64, 4), BlockInfo(0, 64, 64, 4)]
        with pytest.raises(ValueError):
            Program(blocks)

    def test_rejects_overlapping_blocks(self):
        blocks = [BlockInfo(0, 0, 64, 4), BlockInfo(1, 32, 64, 4)]
        with pytest.raises(ValueError):
            Program(blocks)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Program([])

    def test_lines_of_matches_block(self, tiny_program):
        for block in tiny_program:
            assert tiny_program.lines_of(block.block_id) == block.lines


class TestBlockTrace:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BlockTrace([])

    def test_len_and_iter(self, tiny_trace):
        assert len(tiny_trace) == 8
        assert list(tiny_trace) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_instruction_count(self, tiny_program, tiny_trace):
        per_block = 64 // 4
        assert tiny_trace.instruction_count(tiny_program) == 8 * per_block

    def test_slice_preserves_metadata(self):
        trace = BlockTrace([1, 2, 3, 4], metadata={"app": "x"})
        sliced = trace.slice(1, 3)
        assert sliced.block_ids == [2, 3]
        assert sliced.metadata == {"app": "x"}


class TestMakeProgramHelper:
    def test_contiguous_layout(self):
        program = make_program([64, 32, 96])
        blocks = sorted(program, key=lambda b: b.address)
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.address + prev.size_bytes == cur.address
