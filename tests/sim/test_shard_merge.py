"""Unit tests for the ShardStats merge algebra.

The sharded pipeline's correctness rests on this being a well-behaved
monoid (up to range adjacency): merging partial statistics must be
associative and permutation-invariant, the identity must be a
two-sided unit, and a delta/finalize round trip must reproduce the
snapshots it was built from.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.stats import (
    SHARD_FLOAT_FIELDS,
    SHARD_INT_FIELDS,
    ShardMergeError,
    ShardStats,
    SimStats,
)


def random_snapshots(rng, n_shards):
    """Cumulative SimStats snapshots at each of ``n_shards`` shard
    boundaries (monotone ints, arbitrary floats, growing miss levels),
    plus the initial empty snapshot."""
    snapshots = [SimStats()]
    totals = {name: 0 for name in SHARD_INT_FIELDS}
    levels = {"l2": 0, "l3": 0, "memory": 0}
    for _ in range(n_shards):
        snap = SimStats()
        for name in SHARD_INT_FIELDS:
            totals[name] += rng.randrange(0, 50)
            setattr(snap, name, totals[name])
        for name in SHARD_FLOAT_FIELDS:
            setattr(snap, name, rng.uniform(0.0, 1e6))
        for key in levels:
            levels[key] += rng.randrange(0, 5)
        snap.miss_level_counts = {k: v for k, v in levels.items() if v}
        snapshots.append(snap)
    return snapshots


def random_parts(seed, n_shards=8):
    rng = random.Random(seed)
    snapshots = random_snapshots(rng, n_shards)
    return [
        ShardStats.delta(i, snapshots[i], snapshots[i + 1])
        for i in range(n_shards)
    ]


class TestIdentity:
    def test_identity_is_two_sided_unit(self):
        part = random_parts(1, 3)[0]
        identity = ShardStats.identity()
        assert identity.merge(part) == part
        assert part.merge(identity) == part
        assert identity.merge(identity) == identity

    def test_merge_zero_shards_finalizes_empty(self):
        assert ShardStats.merge_all([]).finalize() == SimStats()

    def test_merge_one_shard_is_that_shard(self):
        part = random_parts(2, 1)[0]
        assert ShardStats.merge_all([part]) == part


class TestMonoidLaws:
    @pytest.mark.parametrize("seed", range(5))
    def test_merge_is_associative(self, seed):
        a, b, c = random_parts(seed, 3)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_all_is_permutation_invariant(self, seed):
        parts = random_parts(seed, 8)
        reference = ShardStats.merge_all(parts)
        rng = random.Random(seed + 1000)
        for _ in range(10):
            shuffled = list(parts)
            rng.shuffle(shuffled)
            assert ShardStats.merge_all(shuffled) == reference

    def test_merged_range_covers_all_parts(self):
        parts = random_parts(3, 6)
        merged = ShardStats.merge_all(parts)
        assert (merged.first, merged.last) == (0, 5)


class TestDeltaFinalize:
    @pytest.mark.parametrize("seed", range(5))
    def test_round_trip_reproduces_final_snapshot(self, seed):
        rng = random.Random(seed)
        snapshots = random_snapshots(rng, 7)
        parts = [
            ShardStats.delta(i, snapshots[i], snapshots[i + 1])
            for i in range(7)
        ]
        final = ShardStats.merge_all(parts).finalize()
        expected = snapshots[-1]
        for name in SHARD_INT_FIELDS:
            assert getattr(final, name) == getattr(expected, name)
        for name in SHARD_FLOAT_FIELDS:
            assert getattr(final, name) == getattr(expected, name)
        assert final.miss_level_counts == expected.miss_level_counts

    def test_negative_deltas_telescope(self):
        """A warmup-reset shard reports counters below the previous
        snapshot; the telescoping sum still lands on the final value."""
        before = SimStats()
        before.l1i_misses = 100
        after = SimStats()
        after.l1i_misses = 7  # reset fired mid-shard
        part = ShardStats.delta(3, before, after)
        index = SHARD_INT_FIELDS.index("l1i_misses")
        assert part.ints[index] == -93

    def test_payload_round_trip(self):
        part = random_parts(4, 5)[2]
        assert ShardStats.from_payload(part.to_payload()) == part


class TestAdjacency:
    def test_gap_raises(self):
        a, _b, c = random_parts(5, 3)
        with pytest.raises(ShardMergeError):
            a.merge(c)

    def test_finalize_requires_shard_zero(self):
        parts = random_parts(6, 4)
        tail = ShardStats.merge_all(parts[1:])
        with pytest.raises(ShardMergeError):
            tail.finalize()


class TestCarryUpdate:
    """The per-shard accounting delta the parallel fold applies."""

    @staticmethod
    def _carry(**overrides):
        from types import SimpleNamespace

        base = dict(l1_dh=1, l1_dm=2, l2_dh=3, miss_level_counts={"l2": 3})
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_plain_shard_adds(self):
        from repro.sim.stats import CarryUpdate

        carry = self._carry()
        CarryUpdate.combine(
            False, ({"l1_dh": 4}, {"l2_dh": 5}), {"l2": 1, "l3": 7}
        ).apply(carry)
        assert (carry.l1_dh, carry.l1_dm, carry.l2_dh) == (5, 2, 8)
        assert carry.miss_level_counts == {"l2": 4, "l3": 7}

    def test_reset_shard_replaces(self):
        from repro.sim.stats import CarryUpdate

        carry = self._carry()
        CarryUpdate.combine(
            True, ({"l1_dh": 4, "l1_dm": 0},), {"memory": 2}
        ).apply(carry)
        assert (carry.l1_dh, carry.l1_dm) == (4, 0)
        assert carry.l2_dh == 3, "untouched counters survive a reset"
        assert carry.miss_level_counts == {"memory": 2}

    def test_duplicate_counter_across_rounds_raises(self):
        from repro.sim.stats import CarryUpdate

        with pytest.raises(ShardMergeError):
            CarryUpdate.combine(False, ({"l1_dh": 1}, {"l1_dh": 2}), {})
