"""Machine-parameter (Table I) tests."""

import pytest

from repro.sim.params import (
    CACHE_LINE_BYTES,
    DEFAULT_MACHINE,
    CacheGeometry,
    MachineParams,
    line_of,
)


class TestLineOf:
    def test_zero_address(self):
        assert line_of(0) == 0

    def test_line_boundaries(self):
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_of(127) == 1
        assert line_of(128) == 2

    def test_large_address(self):
        assert line_of(1 << 30) == (1 << 30) // CACHE_LINE_BYTES


class TestCacheGeometry:
    def test_l1i_shape(self):
        geometry = CacheGeometry(32 * 1024, 8, "L1I")
        assert geometry.num_lines == 512
        assert geometry.num_sets == 64

    def test_l2_shape(self):
        geometry = CacheGeometry(1024 * 1024, 16, "L2")
        assert geometry.num_lines == 16384
        assert geometry.num_sets == 1024

    def test_l3_shape(self):
        geometry = CacheGeometry(10 * 1024 * 1024, 20, "L3")
        assert geometry.num_sets == geometry.num_lines // 20

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheGeometry(0, 8)
        with pytest.raises(ValueError):
            CacheGeometry(4096, 0)


class TestMachineParams:
    def test_table1_defaults(self):
        m = DEFAULT_MACHINE
        assert m.l1i.size_bytes == 32 * 1024 and m.l1i.ways == 8
        assert m.l1d.size_bytes == 32 * 1024 and m.l1d.ways == 8
        assert m.l2.size_bytes == 1024 * 1024 and m.l2.ways == 16
        assert m.l3.size_bytes == 10 * 1024 * 1024 and m.l3.ways == 20
        assert m.l1i_latency == 3
        assert m.l1d_latency == 4
        assert m.l2_latency == 12
        assert m.l3_latency == 36
        assert m.memory_latency == 260
        assert m.frequency_ghz == 2.5
        assert m.cores_per_socket == 20

    def test_miss_penalties(self):
        m = MachineParams()
        assert m.miss_penalty("l1") == 0
        assert m.miss_penalty("l2") == 12
        assert m.miss_penalty("l3") == 36
        assert m.miss_penalty("memory") == 260

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            MachineParams().miss_penalty("l4")

    def test_penalties_monotonic(self):
        m = MachineParams()
        levels = ["l1", "l2", "l3", "memory"]
        penalties = [m.miss_penalty(level) for level in levels]
        assert penalties == sorted(penalties)
