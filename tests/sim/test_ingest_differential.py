"""Differential tests: ingested external traces through every backend.

The acceptance bar for the ingestion frontend: a ChampSim-style
fixture trace, ingested into the synthesized ``Program`` + block-trace
view and persisted as an on-disk shard directory, must replay
**bit-identically** — every statistic, the final residency of every
cache level, and the prefetch engine's runtime state — across

* the sequential reference loop and the columnar kernel,
* ``--shard-insns`` streaming over the materialized trace,
* the on-disk :class:`ShardedTrace` consumed directly,
* ``--parallel-shards`` exact mode, and
* the plan-batched executor (``run_plan_batch``).

An ingested program is ordinary simulator input; nothing downstream
may be able to tell it was born outside the synthesizer.
"""

from __future__ import annotations

import random

import pytest

from repro import kernel
from repro.sim.cpu import CoreSimulator
from repro.sim.parallel import ParallelConfig
from repro.sim.streaming import run_plan_batch

from ..conftest import (
    engine_state,
    hierarchy_state,
    make_random_plan,
)

#: an awkward prime, the fixture's own on-disk budget, one huge shard
SHARD_SIZES = (409, 2048, 10**9)

BACKENDS = ("reference", "columnar")


def _gate(backend):
    return kernel.reference_path if backend == "reference" else (
        kernel.force_numpy_kernel
    )


def _replay(program, trace, backend, plan=None, warmup=0,
            shard_insns=None, parallel=None):
    with _gate(backend)():
        core = CoreSimulator(program, plan=plan)
        stats = core.run(trace, warmup=warmup, shard_insns=shard_insns,
                         parallel=parallel)
    return core, stats


def _snap(core):
    return (core.stats, hierarchy_state(core), engine_state(core))


def _plan(program, seed=2026, n_sites=8):
    return make_random_plan(random.Random(seed), program, n_sites=n_sites)


class TestIngestedBitIdentity:
    """The ingested fixture is indistinguishable from native input."""

    @pytest.mark.parametrize("with_plan", (False, True))
    def test_backends_agree(self, ingested_fixture, with_plan):
        workload, _ = ingested_fixture
        plan = _plan(workload.program) if with_plan else None
        ref_core, _ = _replay(
            workload.program, workload.trace, "reference", plan=plan
        )
        col_core, _ = _replay(
            workload.program, workload.trace, "columnar", plan=plan
        )
        assert _snap(col_core) == _snap(ref_core)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharding_invisible(self, ingested_fixture, backend):
        workload, _ = ingested_fixture
        plan = _plan(workload.program)
        whole_core, _ = _replay(
            workload.program, workload.trace, backend, plan=plan
        )
        for shard_insns in SHARD_SIZES:
            core, _ = _replay(
                workload.program, workload.trace, backend, plan=plan,
                shard_insns=shard_insns,
            )
            context = f"backend={backend} shard_insns={shard_insns}"
            assert _snap(core) == _snap(whole_core), context

    @pytest.mark.parametrize("with_plan", (False, True))
    def test_on_disk_shards_replay_identically(
        self, ingested_fixture, with_plan
    ):
        """The persisted shard directory is a drop-in for the trace
        it was written from (same greedy budget)."""
        workload, sharded = ingested_fixture
        assert sharded.num_shards > 1
        plan = _plan(workload.program) if with_plan else None
        seq_core, _ = _replay(
            workload.program, workload.trace, "columnar", plan=plan,
            shard_insns=2048,
        )
        disk_core, _ = _replay(
            workload.program, sharded, "columnar", plan=plan
        )
        assert _snap(disk_core) == _snap(seq_core)

    @pytest.mark.parametrize("with_plan", (False, True))
    @pytest.mark.parametrize("workers", (2, 4))
    def test_parallel_exact(self, ingested_fixture, workers, with_plan):
        workload, _ = ingested_fixture
        plan = _plan(workload.program) if with_plan else None
        seq_core, _ = _replay(
            workload.program, workload.trace, "columnar", plan=plan,
            shard_insns=2048,
        )
        par_core, _ = _replay(
            workload.program, workload.trace, "columnar", plan=plan,
            shard_insns=2048,
            parallel=ParallelConfig(mode="exact", workers=workers),
        )
        context = f"workers={workers} plan={with_plan}"
        assert _snap(par_core) == _snap(seq_core), context
        assert par_core.last_replay_backend == (
            seq_core.last_replay_backend
        ), context

    def test_plan_batch(self, ingested_fixture):
        """A sweep-style variant set over the ingested program batches
        cleanly and lands on the per-variant reference answers."""
        workload, _ = ingested_fixture
        plans = [
            _plan(workload.program, seed=seed, n_sites=sites)
            for seed, sites in ((1, 3), (2, 6), (3, 9))
        ]
        expected = []
        for plan in plans:
            core, _ = _replay(
                workload.program, workload.trace, "reference", plan=plan
            )
            expected.append(_snap(core))
        cores = [
            CoreSimulator(workload.program, plan=plan) for plan in plans
        ]
        with kernel.force_numpy_kernel():
            reasons = run_plan_batch(cores, workload.trace)
        assert reasons == [None, None, None]
        for core in cores:
            assert core.last_replay_backend == "columnar-plan-batch"
        assert [_snap(core) for core in cores] == expected

    def test_acceptance_matrix(self, ingested_fixture):
        """The headline guarantee in one table: sequential reference,
        sequential columnar, shard-streamed, on-disk shards, parallel
        exact, and plan-batched replays of the ingested fixture all
        produce the same snapshot."""
        workload, sharded = ingested_fixture
        program, trace = workload.program, workload.trace
        plan = _plan(program)

        snapshots = {}
        core, _ = _replay(program, trace, "reference", plan=plan,
                          shard_insns=2048)
        snapshots["sequential-reference"] = _snap(core)
        core, _ = _replay(program, trace, "columnar", plan=plan,
                          shard_insns=2048)
        snapshots["sequential-columnar"] = _snap(core)
        core, _ = _replay(program, trace, "columnar", plan=plan,
                          shard_insns=409)
        snapshots["shard-streamed"] = _snap(core)
        core, _ = _replay(program, sharded, "columnar", plan=plan)
        snapshots["on-disk-shards"] = _snap(core)
        core, _ = _replay(
            program, trace, "columnar", plan=plan, shard_insns=2048,
            parallel=ParallelConfig(mode="exact", workers=2),
        )
        snapshots["parallel-exact"] = _snap(core)
        core = CoreSimulator(program, plan=plan)
        with kernel.force_numpy_kernel():
            reasons = run_plan_batch([core], trace, shard_insns=2048)
        assert reasons == [None]
        snapshots["plan-batched"] = _snap(core)

        baseline = snapshots["sequential-reference"]
        for label, snap in snapshots.items():
            assert snap == baseline, f"{label} diverged"
