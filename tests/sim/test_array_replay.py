"""Differential tests: columnar array replay vs the reference loop.

The array-replay fast path must be *bit-identical* to
:class:`CoreSimulator`'s reference loop — every statistic, every float,
and the final microarchitectural state.  Equality here is always
``==``, never approximate.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import kernel
from repro.sim.cpu import CoreSimulator
from repro.sim.datatraffic import DataTrafficModel
from repro.sim.trace import BlockTrace
from repro.workloads.apps import build_app

from ..conftest import hierarchy_state as _hierarchy_state, make_program

APPS = ("wordpress", "drupal", "finagle-http")


def _run(program, trace, backend, data_traffic=None, warmup=0, ideal=False):
    with backend():
        core = CoreSimulator(
            program, data_traffic=data_traffic, ideal=ideal
        )
        stats = core.run(trace, warmup=warmup)
    return core, stats


def _assert_identical(program, trace, data_traffic=None, warmup=0, ideal=False):
    ref_core, ref_stats = _run(
        program, trace, kernel.reference_path,
        data_traffic=data_traffic() if data_traffic else None,
        warmup=warmup, ideal=ideal,
    )
    col_core, col_stats = _run(
        program, trace, kernel.force_numpy_kernel,
        data_traffic=data_traffic() if data_traffic else None,
        warmup=warmup, ideal=ideal,
    )
    assert ref_core.last_replay_backend == "reference"
    assert col_core.last_replay_backend == "columnar"
    assert col_stats == ref_stats
    if not ideal:
        assert _hierarchy_state(col_core) == _hierarchy_state(ref_core)
        assert col_core.hierarchy.l1i.stats == ref_core.hierarchy.l1i.stats
        assert col_core.hierarchy.l2.stats == ref_core.hierarchy.l2.stats
        assert col_core.hierarchy.l3.stats == ref_core.hierarchy.l3.stats
    return ref_stats


class TestTinyTraces:
    def test_cold_and_repeat(self):
        program = make_program([64, 64, 64, 64])
        _assert_identical(program, BlockTrace([0, 1, 2, 3, 0, 1, 2, 3]))

    def test_multi_line_blocks(self):
        program = make_program([64, 200, 64, 640, 130])
        _assert_identical(program, BlockTrace([0, 1, 2, 3, 4, 1, 3, 3, 0]))

    def test_back_to_back_same_block(self):
        program = make_program([64, 64])
        _assert_identical(program, BlockTrace([0, 0, 0, 1, 1, 0]))

    def test_capacity_evictions(self):
        # Far more lines than the L1I holds: exercises eviction + L2/L3.
        program = make_program([640] * 80)
        trace = BlockTrace(
            [i % 80 for i in range(400)] + list(range(0, 80, 3))
        )
        _assert_identical(program, trace)

    def test_warmup_boundary(self):
        program = make_program([64] * 8)
        trace = BlockTrace(list(range(8)) * 4)
        _assert_identical(program, trace, warmup=8)
        _assert_identical(program, trace, warmup=len(trace.block_ids) - 1)

    def test_ideal_mode(self):
        program = make_program([64, 320, 64])
        _assert_identical(program, BlockTrace([0, 1, 2, 1, 0]), ideal=True)

    def test_single_block_trace(self):
        program = make_program([64, 64])
        _assert_identical(program, BlockTrace([1]))


class TestApps:
    @pytest.mark.parametrize("name", APPS)
    def test_app_replay_with_data_traffic_and_warmup(self, name):
        app = build_app(name, scale=0.25)
        trace = app.trace(12_000, seed=app.spec.seed + 7)
        _assert_identical(
            program=app.program,
            trace=trace,
            data_traffic=app.data_traffic,
            warmup=2_000,
        )


class TestDataTrafficFastPath:
    def test_model_end_state_matches(self):
        app = build_app("wordpress", scale=0.25)
        trace = app.trace(6_000)

        ref_model = app.data_traffic()
        col_model = app.data_traffic()
        with kernel.reference_path():
            ref_core = CoreSimulator(app.program, data_traffic=ref_model)
            ref_stats = ref_core.run(trace)
        with kernel.force_numpy_kernel():
            col_core = CoreSimulator(app.program, data_traffic=col_model)
            col_stats = col_core.run(trace)
        assert col_core.last_replay_backend == "columnar"
        assert col_stats == ref_stats
        # The fast decode must leave the model exactly where the
        # reference left it: same access count, same fractional
        # accumulator, same RNG state.
        assert col_model.accesses == ref_model.accesses
        assert col_model._accumulator == ref_model._accumulator
        assert col_model._rng.getstate() == ref_model._rng.getstate()

    def test_subclassed_model_uses_recorder_fallback(self):
        class TaggedModel(DataTrafficModel):
            pass

        ref_model = DataTrafficModel(
            rate_per_instruction=0.05, working_set_lines=1024, seed=1234
        )
        col_model = TaggedModel(
            rate_per_instruction=0.05, working_set_lines=1024, seed=1234
        )
        program = make_program([64] * 16)
        trace = BlockTrace([i % 16 for i in range(500)])
        with kernel.reference_path():
            ref_stats = CoreSimulator(
                program, data_traffic=ref_model
            ).run(trace)
        with kernel.force_numpy_kernel():
            col_stats = CoreSimulator(
                program, data_traffic=col_model
            ).run(trace)
        assert col_stats == ref_stats


class TestVectorizationAssumptions:
    def test_accumulate_is_sequential_fold(self):
        """``np.add.accumulate`` must equal the strict left-to-right
        running sum — the property the timing kernel's per-segment
        accumulation is built on."""
        rng = random.Random(99)
        values = np.array(
            [rng.uniform(0.0, 50.0) for _ in range(4096)], dtype=np.float64
        )
        accumulated = np.add.accumulate(values)
        running = 0.0
        for index, value in enumerate(values.tolist()):
            running += value
            assert accumulated[index] == running
