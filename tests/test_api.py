"""Top-level package API tests."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "simulate" in listing
        assert "ISpy" in listing

    def test_exports_are_canonical_objects(self):
        from repro.core.ispy import ISpy as canonical

        assert repro.ISpy is canonical

    def test_app_names_exported(self):
        assert len(repro.APP_NAMES) == 9


class TestDocstringQuickstartShape:
    def test_quickstart_flow_works(self):
        """The README / module docstring flow, miniaturized."""
        app = repro.get_app("tomcat", scale=0.15)
        profile = repro.profile_execution(
            app.program, app.trace(4000), data_traffic=app.data_traffic()
        )
        result = repro.build_ispy_plan(app.program, profile)
        stats = repro.simulate(
            app.program,
            app.trace(4000, seed=7),
            plan=result.plan,
            data_traffic=app.data_traffic(seed=9),
        )
        assert stats.cycles > 0
        assert isinstance(result.plan, repro.PrefetchPlan)
