"""Top-level package API tests."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.nonexistent_thing

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "simulate" in listing
        assert "ISpy" in listing

    def test_exports_are_canonical_objects(self):
        from repro.core.ispy import ISpy as canonical

        assert repro.ISpy is canonical

    def test_app_names_exported(self):
        assert len(repro.APP_NAMES) == 9

    def test_dir_matches_all(self):
        assert sorted(dir(repro)) == sorted(repro.__all__)

    def test_observability_exports_are_canonical(self):
        from repro.obs.manifest import RunManifest
        from repro.obs.trace import Tracer
        from repro.perf import PerfRegistry
        from repro.runconfig import RunConfig

        assert repro.RunConfig is RunConfig
        assert repro.Tracer is Tracer
        assert repro.RunManifest is RunManifest
        assert repro.PerfRegistry is PerfRegistry


class TestApiSnapshot:
    """The public surface is a contract: additions are deliberate,
    removals are breaking.  Update this snapshot when the API changes
    on purpose."""

    SNAPSHOT = frozenset(
        {
            # simulator
            "simulate", "CoreSimulator", "MachineParams", "SimStats",
            "Program", "BlockInfo", "BlockTrace",
            # workloads
            "APP_NAMES", "get_app", "build_app", "AppSpec", "synthesize",
            # profiling
            "profile_execution", "ExecutionProfile",
            # core
            "ISpy", "ISpyConfig", "build_ispy_plan", "PrefetchPlan",
            "PrefetchInstr",
            # baselines (the prefetcher zoo)
            "Prefetcher", "get_prefetcher", "prefetcher_names",
            "build_asmdb_plan", "simulate_ideal", "simulate_nextline",
            # analysis
            "Evaluator", "ExperimentSettings", "render_table",
            # run configuration & observability
            "RunConfig", "Tracer", "RunManifest", "PerfRegistry",
        }
    )

    def test_all_matches_snapshot(self):
        assert set(repro.__all__) == self.SNAPSHOT | {"__version__"}

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(names)
        assert len(repro.__all__) == len(set(repro.__all__))


class TestBaselinesApiSnapshot:
    """The prefetcher-zoo package surface, same contract as above."""

    SNAPSHOT = frozenset(
        {
            # protocol & registry
            "Footprint", "PlanReplay", "Prefetcher", "ProfileView",
            "ReplayContext", "capability_rows", "get_prefetcher",
            "plan_of", "plan_prefetcher_names", "prefetcher_names",
            "register_prefetcher",
            # asmdb
            "ASMDB_FANOUT_THRESHOLD", "AsmDBPrefetcher", "AsmDBResult",
            "build_asmdb_plan",
            # window limit study
            "WindowPrefetcher", "build_contiguous_plan",
            "build_noncontiguous_plan", "build_window_plan",
            "simulate_window_prefetcher",
            # fdip
            "BimodalBTB", "FDIPPrefetcher", "simulate_fdip",
            # ideal
            "IdealPrefetcher", "simulate_ideal",
            # ispy adapter
            "ISpyPrefetcher",
            # nextline
            "NextLinePrefetcher", "simulate_nextline",
            # mana
            "ManaPrefetcher", "ManaResult", "ManaTable",
            "build_mana_table", "simulate_mana",
        }
    )

    #: every registered zoo member; additions are deliberate
    REGISTRY = frozenset(
        {
            "asmdb",
            "contiguous8",
            "noncontiguous8",
            "fdip",
            "ideal",
            "ispy",
            "ispy-conditional",
            "ispy-coalescing",
            "mana",
            "nextline",
        }
    )

    def test_all_matches_snapshot(self):
        from repro import baselines

        assert set(baselines.__all__) == self.SNAPSHOT

    def test_all_exports_resolve(self):
        from repro import baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None

    def test_all_is_sorted(self):
        from repro import baselines

        assert list(baselines.__all__) == sorted(baselines.__all__)

    def test_registry_matches_snapshot(self):
        from repro.baselines import prefetcher_names

        assert set(prefetcher_names()) == self.REGISTRY

    def test_zoo_exports_are_canonical(self):
        from repro import baselines
        from repro.baselines.protocol import Prefetcher, get_prefetcher

        assert baselines.Prefetcher is Prefetcher
        assert baselines.get_prefetcher is get_prefetcher
        assert repro.Prefetcher is Prefetcher
        assert repro.get_prefetcher is get_prefetcher


class TestDocstringQuickstartShape:
    def test_quickstart_flow_works(self):
        """The README / module docstring flow, miniaturized."""
        app = repro.get_app("tomcat", scale=0.15)
        profile = repro.profile_execution(
            app.program, app.trace(4000), data_traffic=app.data_traffic()
        )
        result = repro.build_ispy_plan(app.program, profile)
        stats = repro.simulate(
            app.program,
            app.trace(4000, seed=7),
            plan=result.plan,
            data_traffic=app.data_traffic(seed=9),
        )
        assert stats.cycles > 0
        assert isinstance(result.plan, repro.PrefetchPlan)
