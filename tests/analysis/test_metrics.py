"""Metric-definition tests."""

import pytest

from repro.analysis import metrics
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.stats import SimStats


def stats_with(cycles, mpki_misses=0, instructions=1000):
    stats = SimStats()
    stats.compute_cycles = cycles
    stats.program_instructions = instructions
    stats.l1i_misses = mpki_misses
    return stats


class TestSpeedup:
    def test_faster_candidate(self):
        assert metrics.speedup(stats_with(200), stats_with(100)) == 2.0

    def test_equal(self):
        assert metrics.speedup(stats_with(100), stats_with(100)) == 1.0

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            metrics.speedup(stats_with(100), stats_with(0))


class TestPercentOfIdeal:
    def test_halfway(self):
        base = stats_with(200)
        ideal = stats_with(100)      # ideal speedup 2.0
        candidate = stats_with(400 / 3)  # speedup 1.5
        value = metrics.percent_of_ideal(base, candidate, ideal)
        assert value == pytest.approx(0.5)

    def test_full(self):
        base, ideal = stats_with(200), stats_with(100)
        assert metrics.percent_of_ideal(base, ideal, ideal) == pytest.approx(1.0)

    def test_no_headroom(self):
        base = stats_with(100)
        assert metrics.percent_of_ideal(base, base, base) == 1.0


class TestMpkiReduction:
    def test_full_elimination(self):
        assert metrics.mpki_reduction(
            stats_with(1, mpki_misses=50), stats_with(1, mpki_misses=0)
        ) == 1.0

    def test_half(self):
        assert metrics.mpki_reduction(
            stats_with(1, mpki_misses=50), stats_with(1, mpki_misses=25)
        ) == pytest.approx(0.5)

    def test_zero_baseline(self):
        assert metrics.mpki_reduction(stats_with(1), stats_with(1)) == 0.0

    def test_coverage_alias(self):
        a, b = stats_with(1, 10), stats_with(1, 5)
        assert metrics.miss_coverage(a, b) == metrics.mpki_reduction(a, b)


class TestFootprints:
    def test_static_increase(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=10))  # 7 bytes
        assert metrics.static_footprint_increase(plan, 700) == pytest.approx(0.01)

    def test_dynamic_increase(self):
        stats = stats_with(1)
        stats.prefetch_instructions_executed = 100
        assert metrics.dynamic_footprint_increase(stats) == pytest.approx(0.1)


class TestAggregation:
    def test_relative_improvement(self):
        assert metrics.relative_improvement(0.12, 0.10) == pytest.approx(0.2)
        assert metrics.relative_improvement(0.1, 0.0) == 0.0

    def test_geometric_mean(self):
        assert metrics.geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            metrics.geometric_mean([])
        with pytest.raises(ValueError):
            metrics.geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert metrics.arithmetic_mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            metrics.arithmetic_mean([])
