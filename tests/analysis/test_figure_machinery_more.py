"""Machinery tests for the remaining figure functions (fast scale)."""

import pytest

from repro.analysis.experiments import (
    Evaluator,
    ExperimentSettings,
    fig04_asmdb_footprint,
    fig05_noncontiguous,
    fig12_ablation,
    fig20_coalesce_profile,
)

APPS = ["finagle-http"]


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(ExperimentSettings.small())


class TestFig04Machinery:
    def test_schema(self, evaluator):
        rows = fig04_asmdb_footprint(evaluator, apps=APPS)
        assert len(rows) == 1
        row = rows[0]
        assert row["static_increase"] > 0
        assert row["dynamic_increase"] > 0


class TestFig05Machinery:
    def test_schema_and_consistency(self, evaluator):
        rows = fig05_noncontiguous(evaluator, apps=APPS)
        row = rows[0]
        assert row["contiguous8_speedup"] > 1.0
        assert row["noncontiguous8_speedup"] > 1.0
        expected = (
            row["noncontiguous8_speedup"] / row["contiguous8_speedup"] - 1.0
        )
        assert row["noncontiguous_advantage"] == pytest.approx(expected)

    def test_window_prefetchers_reduce_misses(self, evaluator):
        e = evaluator[APPS[0]]
        base = e.baseline_stats
        for variant in ("contiguous8", "noncontiguous8"):
            assert e.stats_for(variant).l1i_misses < base.l1i_misses


class TestFig12Machinery:
    def test_arms_are_relative_to_asmdb(self, evaluator):
        rows = fig12_ablation(evaluator, apps=APPS)
        row = rows[0]
        e = evaluator[APPS[0]]
        asmdb = e.speedup("asmdb")
        expected = e.speedup("ispy") / asmdb - 1.0
        assert row["combined_over_asmdb"] == pytest.approx(expected)


class TestFig20Machinery:
    def test_empty_when_no_coalescing(self, evaluator):
        profile = fig20_coalesce_profile(evaluator, apps=APPS)
        # distributions are normalized (or empty) by construction
        total = sum(profile["distance_distribution"].values())
        assert total == pytest.approx(1.0) or total == 0.0
        assert set(profile["distance_distribution"]) <= set(range(1, 9))
