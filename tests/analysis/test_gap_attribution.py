"""Gap-attribution tests: the loss channels must partition the gap."""

import pytest

from repro.analysis.metrics import gap_attribution
from repro.core.ispy import build_ispy_plan
from repro.sim.cpu import simulate


class TestGapAttribution:
    @pytest.fixture(scope="class")
    def runs(self, request):
        small_app = request.getfixturevalue("small_app")
        small_profile = request.getfixturevalue("small_profile")
        small_eval_trace = request.getfixturevalue("small_eval_trace")
        plan = build_ispy_plan(small_app.program, small_profile).plan
        candidate = simulate(
            small_app.program,
            small_eval_trace,
            plan=plan,
            warmup=4000,
            data_traffic=small_app.data_traffic(seed=1),
        )
        ideal = simulate(
            small_app.program, small_eval_trace, ideal=True, warmup=4000
        )
        return candidate, ideal

    def test_channels_partition_the_gap(self, runs):
        candidate, ideal = runs
        attribution = gap_attribution(candidate, ideal)
        total = (
            attribution["residual_miss_stall"]
            + attribution["late_prefetch_stall"]
            + attribution["instruction_overhead"]
        )
        assert total == pytest.approx(attribution["gap_cycles"], rel=1e-9)

    def test_fractions_sum_to_one(self, runs):
        candidate, ideal = runs
        attribution = gap_attribution(candidate, ideal)
        fractions = sum(
            attribution[key]
            for key in attribution
            if key.endswith("_fraction")
        )
        assert fractions == pytest.approx(1.0)

    def test_all_channels_nonnegative(self, runs):
        candidate, ideal = runs
        attribution = gap_attribution(candidate, ideal)
        assert attribution["residual_miss_stall"] >= 0
        assert attribution["late_prefetch_stall"] >= 0
        assert attribution["instruction_overhead"] >= 0
        assert attribution["gap_cycles"] > 0

    def test_ideal_vs_itself_has_no_gap(self, runs):
        _, ideal = runs
        attribution = gap_attribution(ideal, ideal)
        assert attribution["gap_cycles"] == 0.0
        assert "residual_miss_stall_fraction" not in attribution
