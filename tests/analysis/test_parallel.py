"""Parallel evaluation and artifact-cache integration tests.

The contract under test: whatever the job count and whatever the
cache state, an (app, variant) simulation yields bit-identical
statistics — and a warm cache replaces simulation entirely.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    DEFAULT_PREWARM_VARIANTS,
    Evaluator,
    ExperimentSettings,
)
from repro.analysis.jobs import (
    reset_budget_warnings,
    resolve_jobs,
    split_worker_budget,
)
from repro.io import ArtifactStore, stats_to_record
from repro.perf import PerfRegistry
from repro.runconfig import RunConfig

APPS = ("wordpress", "kafka")
VARIANTS = ("baseline", "ideal", "asmdb", "ispy")

SETTINGS = ExperimentSettings(
    profile_length=12_000, eval_length=15_000, warmup=3_000, scale=0.25
)


@pytest.fixture(scope="module")
def serial_evaluator():
    evaluator = Evaluator(SETTINGS)
    evaluator.prewarm(apps=APPS, variants=VARIANTS)
    return evaluator


@pytest.fixture(scope="module")
def serial_records(serial_evaluator):
    return {
        (name, variant): stats_to_record(
            serial_evaluator[name].stats_for(variant)
        )
        for name in APPS
        for variant in VARIANTS
    }


class TestParallelEqualsSerial:
    def test_two_workers_bit_identical(self, serial_records):
        evaluator = Evaluator(config=RunConfig(settings=SETTINGS, jobs=2))
        evaluator.prewarm(apps=APPS, variants=VARIANTS)
        for name in APPS:
            for variant in VARIANTS:
                assert (
                    stats_to_record(evaluator[name].stats_for(variant))
                    == serial_records[(name, variant)]
                ), f"{name}/{variant} diverged under jobs=2"

    def test_parallel_prewarm_populates_memory_caches(self):
        evaluator = Evaluator(config=RunConfig(settings=SETTINGS, jobs=2))
        evaluator.prewarm(apps=["wordpress"], variants=VARIANTS)
        perf = PerfRegistry()
        evaluator.perf = perf
        for evaluation in evaluator._apps.values():
            evaluation.perf = perf
        # every variant must now come from the in-memory/persistent
        # caches — no further simulation in the parent
        for variant in VARIANTS:
            evaluator["wordpress"].stats_for(variant)
        assert perf.calls("simulate") == 0

    def test_ephemeral_store_created_for_parallel_runs(self):
        evaluator = Evaluator(config=RunConfig(settings=SETTINGS, jobs=2))
        assert evaluator.store is None
        evaluator._ensure_store()
        assert isinstance(evaluator.store, ArtifactStore)
        assert evaluator._ephemeral_store is not None


class TestPersistentWarmRun:
    def test_second_run_skips_profiling_and_simulation(
        self, tmp_path, serial_records
    ):
        cold_perf = PerfRegistry()
        cold = Evaluator(
            config=RunConfig(
                settings=SETTINGS, store=tmp_path / "cache", perf=cold_perf
            )
        )
        cold.prewarm(apps=["wordpress"], variants=VARIANTS)
        assert cold_perf.calls("simulate") == len(VARIANTS)
        assert cold_perf.calls("profile") == 1

        warm_perf = PerfRegistry()
        warm = Evaluator(
            config=RunConfig(
                settings=SETTINGS, store=tmp_path / "cache", perf=warm_perf
            )
        )
        warm.prewarm(apps=["wordpress"], variants=VARIANTS)
        assert warm_perf.calls("simulate") == 0
        assert warm_perf.calls("profile") == 0
        assert warm_perf.calls("synthesize") == 0
        assert warm_perf.calls("store-hit:stats") == len(VARIANTS)
        for variant in VARIANTS:
            assert (
                stats_to_record(warm["wordpress"].stats_for(variant))
                == serial_records[("wordpress", variant)]
            )


class TestKeyGranularity:
    """Sweep points must never alias each other's cached artifacts."""

    def evaluation(self):
        return Evaluator(SETTINGS)["wordpress"]

    def test_key_depends_on_settings(self):
        a = self.evaluation()
        b = Evaluator(
            ExperimentSettings(
                profile_length=12_000,
                eval_length=15_000,
                warmup=4_000,  # only the warmup differs
                scale=0.25,
            )
        )["wordpress"]
        assert a._stats_key(None, 16, False, None) != b._stats_key(
            None, 16, False, None
        )

    def test_key_depends_on_run_parameters(self):
        ev = self.evaluation()
        base = ev._stats_key(None, 16, False, None)
        assert ev._stats_key(None, 8, False, None) != base
        assert ev._stats_key(None, 16, True, None) != base
        assert ev._stats_key(None, 16, False, None, ideal=True) != base

    def test_key_depends_on_trace_identity(self):
        ev = self.evaluation()
        app = ev.app
        t1 = app.trace(2_000, seed=1, input_name="a")
        t2 = app.trace(2_000, seed=2, input_name="a")
        t3 = app.trace(2_000, seed=1, input_name="b")
        keys = {
            ev._stats_key(None, 16, False, t)
            for t in (None, t1, t2, t3)
        }
        assert len(keys) == 4

    def test_plan_keys_depend_on_planner_parameters(self):
        from repro.baselines import get_prefetcher
        from repro.core.config import DEFAULT_CONFIG

        ev = self.evaluation()

        def plan_key(prefetcher):
            return ev._key("plan", **prefetcher.plan_key_parts())

        assert plan_key(
            get_prefetcher("asmdb", fanout_threshold=0.90)
        ) != plan_key(get_prefetcher("asmdb", fanout_threshold=0.95))
        assert plan_key(get_prefetcher("ispy")) != plan_key(
            get_prefetcher("ispy", config=DEFAULT_CONFIG.conditional_only())
        )

    def test_sweep_stats_do_not_alias(self, tmp_path):
        """Fig. 3-style sweep: distinct thresholds, distinct artifacts."""
        perf = PerfRegistry()
        evaluator = Evaluator(
            config=RunConfig(
                settings=SETTINGS, store=tmp_path / "cache", perf=perf
            )
        )
        ev = evaluator["wordpress"]
        low = ev.run_plan(ev.asmdb_plan(0.5))
        high = ev.run_plan(ev.asmdb_plan(0.99))
        # the two planner outputs genuinely differ, and so must the
        # cached stats entries (no aliasing between sweep points)
        assert stats_to_record(low) != stats_to_record(high)
        assert perf.calls("simulate") == 2


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(1) == 1
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(-2) >= 1


class TestWorkerBudget:
    """One budget shared by --jobs and --parallel-shards pools."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_dedup(self):
        """Each test sees a process that has warned about nothing."""
        reset_budget_warnings()
        yield
        reset_budget_warnings()

    def test_no_budget_resolves_independently(self):
        jobs, shard_workers = split_worker_budget(2, 3, None)
        assert (jobs, shard_workers) == (2, 3)

    def test_budget_split_evenly(self):
        assert split_worker_budget(2, None, 8) == (2, 4)
        assert split_worker_budget(1, None, 8) == (1, 8)
        assert split_worker_budget(3, None, 8) == (3, 2)

    def test_jobs_alone_oversubscribing_warns_and_floors_shards(self):
        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            jobs, shard_workers = split_worker_budget(4, None, 2)
        assert (jobs, shard_workers) == (4, 1)

    def test_requested_shard_workers_clamped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            jobs, shard_workers = split_worker_budget(2, 8, 8)
        assert (jobs, shard_workers) == (2, 4)

    def test_identical_oversubscription_warns_once_per_process(self):
        """Re-validating the same budget split (once per sweep job,
        once per benchmark repeat...) must not repeat the warning."""
        import warnings

        with pytest.warns(RuntimeWarning, match="clamping"):
            split_worker_budget(2, 8, 8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert split_worker_budget(2, 8, 8) == (2, 4)
        reset_budget_warnings()
        with pytest.warns(RuntimeWarning, match="clamping"):
            split_worker_budget(2, 8, 8)

    def test_distinct_oversubscription_still_warns(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            split_worker_budget(2, 8, 8)
        with pytest.warns(RuntimeWarning, match="clamping"):
            split_worker_budget(2, 16, 8)

    def test_record_captures_split_provenance(self):
        record: dict = {}
        with pytest.warns(RuntimeWarning, match="clamping"):
            split_worker_budget(2, 8, 8, record=record)
        assert record == {
            "worker_budget": 8, "jobs": 2, "shard_workers": 4,
            "clamped": True,
        }
        record = {}
        split_worker_budget(2, 3, 8, record=record)
        assert record == {
            "worker_budget": 8, "jobs": 2, "shard_workers": 3,
            "clamped": False,
        }
        record = {}
        split_worker_budget(2, 3, None, record=record)
        assert record == {
            "worker_budget": None, "jobs": 2, "shard_workers": 3,
            "clamped": False,
        }

    def test_within_budget_passes_through_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert split_worker_budget(2, 3, 8) == (2, 3)

    def test_both_flags_set_together_end_to_end(self):
        """--jobs 2 --shard-insns N --parallel-shards exact
        --worker-budget 2: the sweep fans out *and* each worker's
        shard pool respects its one-process share, bit-identically."""
        config = RunConfig(
            settings=SETTINGS,
            jobs=2,
            shard_insns=4_000,
            parallel_shards="exact",
            worker_budget=2,
        )
        evaluator = Evaluator(config=config)
        assert evaluator.parallel is not None
        assert evaluator.parallel.mode == "exact"
        assert evaluator.parallel.resolve_workers() == 1
        evaluator.prewarm(apps=["wordpress"], variants=("baseline", "ideal"))
        serial = Evaluator(SETTINGS)
        for variant in ("baseline", "ideal"):
            assert (
                stats_to_record(evaluator["wordpress"].stats_for(variant))
                == stats_to_record(serial["wordpress"].stats_for(variant))
            ), f"{variant} diverged under jobs x parallel-shards"

    def test_parallel_without_shards_warns_and_stays_sequential(self):
        with pytest.warns(RuntimeWarning, match="requires shard_insns"):
            evaluator = Evaluator(
                config=RunConfig(settings=SETTINGS, parallel_shards="exact")
            )
        assert evaluator.parallel is None


def test_default_prewarm_variants_are_known():
    evaluator = Evaluator(SETTINGS)
    evaluation = evaluator["wordpress"]
    for variant in DEFAULT_PREWARM_VARIANTS:
        # stats_for would raise KeyError on an unknown name; probing
        # the dispatch table must not require running simulations
        assert variant in (
            "baseline", "ideal", "asmdb", "ispy", "ispy-conditional",
            "ispy-coalescing", "contiguous8", "noncontiguous8", "nextline",
        )
    assert evaluation.name == "wordpress"
