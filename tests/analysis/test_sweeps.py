"""Sensitivity-sweep machinery tests (figures 3, 17, 18, 19, 21)
at a fast scale — shape assertions live in the benchmarks."""

import pytest

from repro.analysis.experiments import (
    Evaluator,
    ExperimentSettings,
    fig03_fanout_tradeoff,
    fig16_generalization,
    fig17_predecessors,
    fig18_distance,
    fig19_coalesce_size,
    fig21_hash_size,
)

APP = "kafka"


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(ExperimentSettings.small())


class TestFig03Machinery:
    def test_rows_per_threshold(self, evaluator):
        rows = fig03_fanout_tradeoff(
            evaluator, app=APP, thresholds=(0.5, 0.99)
        )
        assert [row["fanout_threshold"] for row in rows] == [0.5, 0.99]
        for row in rows:
            assert 0.0 <= row["prefetch_accuracy"] <= 1.0
            assert 0.0 <= row["planned_lines_covered"] <= 1.0


class TestFig16Machinery:
    def test_rows_per_app_input(self, evaluator):
        rows = fig16_generalization(
            evaluator, apps=(APP,), inputs=("default", "input-2")
        )
        assert len(rows) == 2
        for row in rows:
            assert row["app"] == APP
            assert -1.0 < row["ispy_pct_of_ideal"] <= 1.0


class TestFig17Machinery:
    def test_rows_per_count(self, evaluator):
        rows = fig17_predecessors(evaluator, counts=(1, 2), apps=(APP,))
        assert [row["predecessors"] for row in rows] == [1, 2]
        for row in rows:
            assert row["mean_pct_of_ideal"] > 0.0


class TestFig18Machinery:
    def test_min_and_max_sweeps(self, evaluator):
        rows = fig18_distance(
            evaluator, minima=(27,), maxima=(200,), apps=(APP,)
        )
        sweeps = {row["sweep"] for row in rows}
        assert sweeps == {"min", "max"}


class TestFig19Machinery:
    def test_plan_shrinks_with_width(self, evaluator):
        rows = fig19_coalesce_size(evaluator, bits=(1, 16), apps=(APP,))
        narrow, wide = rows
        assert wide["mean_plan_instructions"] <= narrow["mean_plan_instructions"]


class TestFig21Machinery:
    def test_hash_sweep_reports_fp_and_static(self, evaluator):
        rows = fig21_hash_size(evaluator, bits=(8, 64), app=APP)
        for row in rows:
            assert 0.0 <= row["false_positive_rate"] <= 1.0
            assert row["static_increase"] > 0.0
        assert rows[1]["static_increase"] >= rows[0]["static_increase"]
