"""Ablation-study machinery tests (fast scale)."""

import pytest

from repro.analysis.ablations import (
    ablation_hardware_prefetcher,
    ablation_lbr_depth,
    ablation_replacement_priority,
    ablation_sample_period,
)
from repro.analysis.experiments import Evaluator, ExperimentSettings


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(ExperimentSettings.small())


class TestReplacementPriority:
    def test_rows_cover_fractions(self, evaluator):
        rows = ablation_replacement_priority(
            evaluator, app="kafka", fractions=(0.0, 0.5)
        )
        assert [row["insertion_fraction"] for row in rows] == [0.0, 0.5]
        for row in rows:
            assert row["pct_of_ideal"] > 0.0
            assert row["l1i_mpki"] >= 0.0


class TestSamplePeriod:
    def test_sparser_sampling_sees_fewer_misses(self, evaluator):
        rows = ablation_sample_period(evaluator, app="kafka", periods=(1, 8))
        by_period = {row["sample_period"]: row for row in rows}
        assert by_period[8]["sampled_misses"] < by_period[1]["sampled_misses"]
        assert (
            by_period[8]["plan_instructions"]
            <= by_period[1]["plan_instructions"]
        )


class TestLbrDepth:
    def test_depths_reported(self, evaluator):
        rows = ablation_lbr_depth(evaluator, app="kafka", depths=(16, 32))
        assert [row["lbr_depth"] for row in rows] == [16, 32]
        for row in rows:
            assert row["pct_of_ideal"] > 0.0


class TestHardwarePrefetcher:
    def test_profile_guided_beats_nextline(self, evaluator):
        rows = ablation_hardware_prefetcher(
            evaluator, apps=("kafka",), lines_ahead=(1, 2)
        )
        row = rows[0]
        best_nextline = max(
            row["nextline1_pct_of_ideal"], row["nextline2_pct_of_ideal"]
        )
        assert row["ispy_pct_of_ideal"] > best_nextline
