"""Experiment-harness tests at a fast scale.

These validate the harness machinery (caching, variant wiring, row
schemas) and the coarse result *shape* on two applications; the full
paper-shape assertions live in the benchmark suite.
"""

import pytest

from repro.analysis.experiments import (
    AppEvaluation,
    Evaluator,
    ExperimentSettings,
    fig01_frontend_bound,
    fig10_speedup,
    fig11_mpki,
    fig13_accuracy,
    fig14_static_footprint,
    fig15_dynamic_footprint,
    fig20_coalesce_profile,
    headline_summary,
    table1_system,
)

APPS = ["kafka", "finagle-http"]


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(ExperimentSettings.small())


class TestEvaluatorMachinery:
    def test_caches_evaluations(self, evaluator):
        assert evaluator["kafka"] is evaluator["kafka"]

    def test_unknown_app_rejected(self, evaluator):
        with pytest.raises(KeyError):
            evaluator["redis"]

    def test_stats_cached(self, evaluator):
        e = evaluator["kafka"]
        assert e.stats_for("ispy") is e.stats_for("ispy")

    def test_unknown_variant_rejected(self, evaluator):
        with pytest.raises(KeyError):
            evaluator["kafka"].stats_for("magic")

    def test_profile_and_eval_traces_differ(self, evaluator):
        e = evaluator["kafka"]
        assert e.profile.block_ids != e.eval_trace.block_ids


class TestOrderings:
    def test_ideal_is_fastest(self, evaluator):
        for name in APPS:
            e = evaluator[name]
            assert e.ideal_stats.cycles < e.stats_for("ispy").cycles
            assert e.stats_for("ispy").cycles < e.baseline_stats.cycles

    def test_prefetchers_cut_mpki_heavily(self, evaluator):
        for name in APPS:
            e = evaluator[name]
            base = e.baseline_stats.l1i_mpki
            assert e.stats_for("ispy").l1i_mpki < 0.4 * base
            assert e.stats_for("asmdb").l1i_mpki < 0.4 * base

    def test_ispy_dynamic_overhead_below_asmdb(self, evaluator):
        for name in APPS:
            e = evaluator[name]
            assert (
                e.stats_for("ispy").dynamic_overhead
                <= e.stats_for("asmdb").dynamic_overhead
            )

    def test_ispy_static_below_asmdb(self, evaluator):
        for name in APPS:
            e = evaluator[name]
            text = e.app.program.text_bytes
            assert e.plan_for("ispy").static_increase(text) <= e.plan_for(
                "asmdb"
            ).static_increase(text)


class TestFigureRows:
    def test_fig01_schema(self, evaluator):
        rows = fig01_frontend_bound(evaluator, apps=APPS)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 < row["frontend_bound"] < 1.0

    def test_fig10_schema(self, evaluator):
        rows = fig10_speedup(evaluator, apps=APPS)
        for row in rows:
            assert row["ideal_speedup"] >= row["ispy_speedup"] > 1.0

    def test_fig11_reductions(self, evaluator):
        rows = fig11_mpki(evaluator, apps=APPS)
        for row in rows:
            assert row["ispy_reduction"] > 0.6

    def test_fig13_accuracy_bounds(self, evaluator):
        rows = fig13_accuracy(evaluator, apps=APPS)
        for row in rows:
            assert 0.0 < row["ispy_accuracy"] <= 1.0

    def test_fig14_15_positive(self, evaluator):
        for row in fig14_static_footprint(evaluator, apps=APPS):
            assert row["ispy_static_increase"] > 0
        for row in fig15_dynamic_footprint(evaluator, apps=APPS):
            assert row["ispy_dynamic_increase"] > 0

    def test_fig20_distributions_normalized(self, evaluator):
        profile = fig20_coalesce_profile(evaluator, apps=APPS)
        assert abs(sum(profile["lines_per_instruction"].values()) - 1.0) < 1e-9
        assert 0.0 <= profile["fraction_below_4_lines"] <= 1.0

    def test_headline_summary_keys(self, evaluator):
        summary = headline_summary(evaluator, apps=APPS)
        assert summary["mean_speedup"] > 0
        assert 0 < summary["mean_mpki_reduction"] <= 1.0


class TestTable1:
    def test_table1_static(self):
        rows = table1_system()
        values = {row["parameter"]: row["value"] for row in rows}
        assert values["L2 latency"] == "12 cycles"
        assert values["Memory latency"] == "260 cycles"
        assert values["Cores per socket"] == 20
