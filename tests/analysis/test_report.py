"""Report-generation tests (fast scale, no sweeps)."""

import pytest

from repro.analysis.experiments import Evaluator, ExperimentSettings
from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    evaluator = Evaluator(ExperimentSettings.small())
    return generate_report(
        evaluator, include_sweeps=False, apps=["kafka", "finagle-http"]
    )


class TestGenerateReport:
    def test_contains_headline_sections(self, report_text):
        assert "# I-SPY reproduction report" in report_text
        assert "Table I" in report_text
        assert "Fig. 10" in report_text
        assert "Headline summary" in report_text

    def test_contains_app_rows(self, report_text):
        assert "kafka" in report_text
        assert "finagle-http" in report_text

    def test_sweeps_skippable(self, report_text):
        assert "Fig. 17" not in report_text
        assert "Fig. 21" not in report_text

    def test_write_report(self, tmp_path):
        evaluator = Evaluator(ExperimentSettings.small())
        target = write_report(
            tmp_path / "r.md", evaluator, include_sweeps=False
        )
        assert target.exists()
        assert "Headline summary" in target.read_text()
