"""Reporting and top-down helper tests."""

import pytest

from repro.analysis.reporting import format_cell, percent, render_table, summarize
from repro.analysis.topdown import breakdown, frontend_bound_fraction
from repro.sim.stats import SimStats


class TestRenderTable:
    def test_basic_table(self):
        rows = [{"app": "kafka", "speedup": 1.234567}]
        table = render_table(rows, title="T")
        assert "kafka" in table
        assert "1.235" in table
        assert table.splitlines()[0] == "T"

    def test_missing_cells_dash(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        table = render_table(rows)
        assert "-" in table.splitlines()[-1]

    def test_column_order_explicit(self):
        rows = [{"a": 1, "b": 2}]
        table = render_table(rows, columns=["b", "a"])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="X")

    def test_precision(self):
        table = render_table([{"v": 0.123456}], precision=5)
        assert "0.12346" in table


class TestFormatting:
    def test_format_cell_types(self):
        assert format_cell("x") == "x"
        assert format_cell(3) == "3"
        assert format_cell(0.5) == "0.500"
        assert format_cell(True) == "yes"

    def test_percent(self):
        assert percent(0.155) == "15.5%"


class TestSummarize:
    def test_mean_min_max(self):
        rows = [{"v": 1.0}, {"v": 3.0}]
        summary = summarize(rows, "v")
        assert summary == {"mean": 2.0, "min": 1.0, "max": 3.0}

    def test_missing_column(self):
        with pytest.raises(ValueError):
            summarize([{"a": 1}], "v")


class TestTopDown:
    def make_stats(self):
        stats = SimStats()
        stats.compute_cycles = 600.0
        stats.frontend_stall_cycles = 400.0
        stats.record_miss_level("l2")
        stats.record_miss_level("l2")
        stats.record_miss_level("memory")
        return stats

    def test_frontend_bound_fraction(self):
        assert frontend_bound_fraction(self.make_stats()) == pytest.approx(0.4)

    def test_breakdown(self):
        result = breakdown(self.make_stats(), {"l2": 12, "memory": 260})
        assert result.frontend_bound == pytest.approx(0.4)
        assert result.retiring == pytest.approx(0.6)
        assert result.stall_cycles_by_level == {"l2": 24, "memory": 260}
        assert result.dominant_miss_level() == "memory"

    def test_empty_breakdown(self):
        result = breakdown(SimStats(), {})
        assert result.frontend_bound == 0.0
        assert result.dominant_miss_level() == "none"
