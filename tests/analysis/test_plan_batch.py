"""The ``run_plans`` batched sweep entry point: cache interplay,
eligibility gating, per-variant overrides, and bit-identity against
the per-variant ``run_plan`` path."""

import pytest

from repro import kernel
from repro.analysis.experiments import (
    AppEvaluation,
    Evaluator,
    ExperimentSettings,
    fig18_distance,
)
from repro import perf as perf_mod
from repro.core.config import DEFAULT_CONFIG
from repro.runconfig import RunConfig

APP = "kafka"
SETTINGS = ExperimentSettings.small()


def _evaluation(**kwargs) -> AppEvaluation:
    # a private perf registry per evaluation, so counter assertions
    # don't see other tests' (or the process-wide registry's) traffic
    kwargs.setdefault("perf", perf_mod.PerfRegistry())
    return AppEvaluation(APP, SETTINGS, **kwargs)


def _sweep_plans(evaluation, minima=(5, 27, 108)):
    return [
        evaluation.ispy_plan(
            DEFAULT_CONFIG.with_window(m, DEFAULT_CONFIG.max_prefetch_distance)
        )
        for m in minima
    ]


@pytest.fixture(scope="module", autouse=True)
def _columnar_kernel():
    # this module asserts simulate:columnar-plan-batch backend
    # counters, which require the kernel; pin it on so the module is
    # independent of REPRO_NUMPY_KERNEL (kernel-off batching equality
    # lives in tests/sim/test_batch_differential.py)
    with kernel.force_numpy_kernel():
        yield


@pytest.fixture(scope="module")
def batched():
    """One batched sweep, shared across the identity assertions."""
    evaluation = _evaluation()
    plans = _sweep_plans(evaluation)
    return evaluation, plans, evaluation.run_plans(plans)


class TestBitIdentity:
    def test_matches_run_plan(self, batched):
        evaluation, plans, sweep = batched
        assert evaluation.perf.calls("sweep:batch") == 1
        assert evaluation.perf.calls("simulate:columnar-plan-batch") == len(
            plans
        )
        solo = _evaluation(plan_batch=False)
        for plan, stats in zip(plans, sweep):
            assert stats == solo.run_plan(plan)
        assert solo.perf.calls("sweep:batch") == 0

    def test_results_are_cached(self, batched):
        evaluation, plans, sweep = batched
        again = evaluation.run_plans(plans)
        assert again == sweep
        # every slot was a cache hit: no second batched pass
        assert evaluation.perf.calls("sweep:batch") == 1


class TestEligibility:
    def test_partial_cache_hits_batch_only_misses(self):
        evaluation = _evaluation()
        plans = _sweep_plans(evaluation)
        evaluation.run_plan(plans[0])  # warm one variant's key
        sweep = evaluation.run_plans(plans)
        assert evaluation.perf.calls("sweep:batch") == 1
        # only the two cold variants went through the batch
        assert evaluation.perf.calls("simulate:columnar-plan-batch") == 2
        assert sweep[0] == evaluation.run_plan(plans[0])

    def test_auto_mode_runs_single_miss_solo(self):
        evaluation = _evaluation()
        plans = _sweep_plans(evaluation, minima=(13,))
        evaluation.run_plans(plans)
        assert evaluation.perf.calls("sweep:batch") == 0
        assert evaluation.perf.calls("simulate:columnar-plan") == 1

    def test_forced_mode_batches_single_miss(self):
        evaluation = _evaluation(plan_batch=True)
        plans = _sweep_plans(evaluation, minima=(13,))
        evaluation.run_plans(plans)
        assert evaluation.perf.calls("sweep:batch") == 1

    def test_disabled_mode_never_batches(self):
        evaluation = _evaluation(plan_batch=False)
        sweep = evaluation.run_plans(_sweep_plans(evaluation))
        assert len(sweep) == 3
        assert evaluation.perf.calls("sweep:batch") == 0

    def test_none_plan_rides_the_solo_path(self):
        evaluation = _evaluation()
        plans = [None] + _sweep_plans(evaluation, minima=(5, 27))
        sweep = evaluation.run_plans(plans)
        assert sweep[0] == evaluation.baseline_stats
        assert evaluation.perf.calls("simulate:columnar-plan-batch") == 2


class TestOverrides:
    def test_per_variant_hash_bits(self):
        evaluation = _evaluation()
        plan = evaluation.ispy_plan()
        items = [
            (plan, {"hash_bits": bits, "track_exact_context": True})
            for bits in (8, 16)
        ]
        sweep = evaluation.run_plans(items)
        solo = _evaluation(plan_batch=False)
        for (plan_i, kw), stats in zip(items, sweep):
            assert stats == solo.run_plan(plan_i, **kw)
            assert stats.false_positive_rate == (
                solo.run_plan(plan_i, **kw).false_positive_rate
            )


class TestEvaluatorPlumbing:
    def test_config_knob_reaches_evaluations(self):
        evaluator = Evaluator(
            config=RunConfig(settings=SETTINGS, plan_batch=False)
        )
        assert evaluator.plan_batch is False
        assert evaluator[APP].plan_batch is False

    def test_figure_sweep_is_identical_either_way(self):
        on = Evaluator(
            config=RunConfig(settings=SETTINGS, perf=perf_mod.PerfRegistry())
        )
        off = Evaluator(
            config=RunConfig(
                settings=SETTINGS,
                plan_batch=False,
                perf=perf_mod.PerfRegistry(),
            )
        )
        rows_on = fig18_distance(on, minima=(5, 27), maxima=(200,), apps=(APP,))
        rows_off = fig18_distance(off, minima=(5, 27), maxima=(200,), apps=(APP,))
        assert rows_on == rows_off
        assert on.perf.calls("sweep:batch") == 1
        assert off.perf.calls("sweep:batch") == 0
