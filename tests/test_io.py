"""Serialization round-trip tests."""

import json

import pytest

from repro import io
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.core.ispy import build_ispy_plan
from repro.sim.cpu import simulate
from repro.workloads.apps import app_spec
from repro.workloads.synthesis import synthesize


def sample_plan():
    plan = PrefetchPlan(name="sample")
    plan.add(PrefetchInstr(site_block=1, base_line=100))
    plan.add(
        PrefetchInstr(
            site_block=2,
            base_line=200,
            bit_vector=0b101,
            context_mask=0x12,
            context_blocks=(7, 9),
            covers=(200, 202),
        )
    )
    return plan


class TestPlanRoundTrip:
    def test_dict_round_trip(self):
        plan = sample_plan()
        restored = io.plan_from_dict(io.plan_to_dict(plan))
        assert restored.name == plan.name
        assert len(restored) == len(plan)
        original = sorted(
            (i.site_block, i.base_line, i.bit_vector, i.context_mask,
             i.context_blocks, i.covers)
            for i in plan
        )
        loaded = sorted(
            (i.site_block, i.base_line, i.bit_vector, i.context_mask,
             i.context_blocks, i.covers)
            for i in restored
        )
        assert original == loaded

    def test_file_round_trip(self, tmp_path):
        plan = sample_plan()
        path = tmp_path / "plan.json"
        io.save_plan(plan, path)
        restored = io.load_plan(path)
        assert restored.static_bytes == plan.static_bytes
        assert restored.kind_counts() == plan.kind_counts()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "app-spec", "version": 1}))
        with pytest.raises(io.FormatError):
            io.load_plan(path)

    def test_wrong_version_rejected(self):
        payload = io.plan_to_dict(sample_plan())
        payload["version"] = 99
        with pytest.raises(io.FormatError):
            io.plan_from_dict(payload)


class TestProfileRoundTrip:
    def test_profile_round_trip_preserves_analysis(self, tmp_path, small_app, small_profile):
        path = tmp_path / "profile.json.gz"
        io.save_profile(small_profile, path)
        restored = io.load_profile(path)

        assert restored.block_ids == small_profile.block_ids
        assert restored.sampled_miss_count == small_profile.sampled_miss_count
        assert restored.edge_counts == small_profile.edge_counts
        assert list(restored.window(100)) == list(small_profile.window(100))

        # the restored profile drives the analysis to the same plan
        original_plan = build_ispy_plan(small_app.program, small_profile).plan
        restored_plan = build_ispy_plan(small_app.program, restored).plan
        key = lambda p: sorted(
            (i.site_block, i.base_line, i.bit_vector) for i in p
        )
        assert key(original_plan) == key(restored_plan)


class TestSpecRoundTrip:
    def test_spec_round_trip(self, tmp_path):
        spec = app_spec("kafka")
        path = tmp_path / "spec.json"
        io.save_spec(spec, path)
        restored = io.load_spec(path)
        assert restored == spec

    def test_restored_spec_synthesizes_identically(self, tmp_path):
        from repro.workloads.synthesis import scaled_spec

        spec = scaled_spec(app_spec("finagle-chirper"), 0.15)
        restored = io.spec_from_dict(io.spec_to_dict(spec))
        a = synthesize(spec)
        b = synthesize(restored)
        assert a.program.text_bytes == b.program.text_bytes
        assert a.trace(300).block_ids == b.trace(300).block_ids


class TestStatsExport:
    def test_stats_to_dict(self, tiny_program):
        from repro.sim.trace import BlockTrace

        stats = simulate(tiny_program, BlockTrace([0, 1, 2, 3]))
        record = io.stats_to_dict(stats)
        assert record["format"] == "sim-stats"
        assert record["l1i_misses"] == 4.0
        assert record["miss_level_counts"] == {"memory": 4}
        json.dumps(record)  # must be JSON-clean
