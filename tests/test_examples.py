"""Example-script smoke tests.

Only the fast toy walkthrough runs end-to-end here; the fleet-scale
examples are exercised indirectly through the experiment-harness
tests and the benchmark suite.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_module(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "context_discovery_walkthrough",
            "datacenter_fleet_study",
            "input_drift_study",
            "online_adaptation",
        ],
    )
    def test_example_present_with_main(self, name):
        path = EXAMPLES / f"{name}.py"
        assert path.exists()
        source = path.read_text()
        assert "def main()" in source
        assert '__main__' in source


class TestWalkthroughRuns:
    def test_walkthrough_recovers_the_context(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "context_discovery_walkthrough.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "{B, E}" in out
        assert "prefetch fires: True" in out
        assert "prefetch fires: False" in out


class TestWalkthroughComponents:
    def test_toy_program_and_trace_shapes(self):
        module = load_module("context_discovery_walkthrough")
        program = module.build_program()
        trace = module.synthesize_trace(requests=50)
        assert len(program) == 12 + len(module.FILLER)
        # every request visits G exactly once
        assert trace.block_ids.count(module.G) == 50
        # K only ever follows an H (the miss path)
        for position, block in enumerate(trace.block_ids):
            if block == module.K:
                assert trace.block_ids[position - 1] == module.H
