"""CLI tests (fast scales)."""

import re

import pytest

from repro.cli import FIGURES, build_parser, main

FAST = ["--scale", "0.15", "--profile-blocks", "6000",
        "--eval-blocks", "8000", "--warmup", "1500"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "redis"])

    def test_figure_registry_covers_paper(self):
        expected = {
            "table1", "fig01", "fig03", "fig04", "fig05", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "fig20", "fig21",
        }
        assert expected <= set(FIGURES)

    def test_every_experiment_figure_function_is_registered(self):
        """No fig*/table* experiment function may be missing from FIGURES.

        This is the regression the fig20 omission slipped through: a
        new figure function landed in experiments.py but never became
        reachable from the CLI.
        """
        from repro.analysis import experiments as exp

        pattern = re.compile(r"^(fig\d+|table\d+)_\w+$")
        expected = {
            match.group(1)
            for name in vars(exp)
            if callable(getattr(exp, name))
            for match in [pattern.match(name)]
            if match is not None
        }
        assert expected, "experiment-function scan found nothing"
        missing = expected - set(FIGURES)
        assert not missing, (
            f"experiment functions not registered in cli.FIGURES: "
            f"{sorted(missing)}"
        )

    def test_figures_map_to_matching_functions(self):
        for key, function in FIGURES.items():
            assert function.__name__.startswith(key + "_"), (
                f"FIGURES[{key!r}] points at {function.__name__}"
            )


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "wordpress" in out and "verilator" in out

    def test_profile(self, capsys):
        assert main(["profile", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "sampled L1I misses" in out
        assert "hottest miss lines" in out

    def test_plan_ispy(self, capsys):
        assert main(["plan", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "instructions:" in out
        assert "static increase:" in out

    def test_plan_asmdb(self, capsys):
        assert main(
            ["plan", "finagle-chirper", "--prefetcher", "asmdb"] + FAST
        ) == 0
        out = capsys.readouterr().out
        assert "asmdb plan" in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "ispy" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_figure_fig20_renders_summary_mapping(self, capsys):
        """fig20 returns a dict, exercising the metric/value rendering."""
        assert main(["figure", "fig20"] + FAST) == 0
        out = capsys.readouterr().out
        assert "fraction_below_4_lines" in out
        assert "distance_distribution" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "apps", "--scale", "0.15"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "wordpress" in result.stdout


class TestTelemetryFlags:
    def test_evaluate_with_trace_and_manifest_across_workers(
        self, tmp_path, capsys
    ):
        """The headline acceptance path: --jobs 2 --trace --manifest.

        The trace must contain spans from the parent *and* the worker
        processes (distinct tids after re-parenting), and the manifest
        must pass schema validation.
        """
        from repro.obs.manifest import RunManifest
        from repro.obs.trace import read_trace, set_tracer

        trace_path = tmp_path / "t.jsonl"
        manifest_path = tmp_path / "m.json"
        try:
            assert main(
                ["evaluate", "finagle-chirper", *FAST, "--jobs", "2",
                 "--trace", str(trace_path), "--manifest", str(manifest_path)]
            ) == 0
        finally:
            set_tracer(None)

        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "manifest written to" in out

        events = read_trace(trace_path)
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "run:evaluate" in names          # parent root span
        assert "job:evaluate-variant" in names  # shipped back from workers
        assert len({e["tid"] for e in spans}) >= 2, (
            "expected worker spans on their own timeline rows"
        )

        manifest = RunManifest.load(manifest_path)  # load() validates
        payload = manifest.payload
        assert payload["command"] == "evaluate"
        assert payload["jobs"] == 2
        assert "finagle-chirper" in payload["apps"]
        assert payload["trace_path"] == str(trace_path)

    def test_timing_flag_prints_report(self, capsys):
        from repro.obs.trace import set_tracer

        try:
            assert main(
                ["evaluate", "finagle-chirper", *FAST, "--timing"]
            ) == 0
        finally:
            set_tracer(None)
        out = capsys.readouterr().out
        assert "simulate" in out
        assert "total" in out
