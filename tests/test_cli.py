"""CLI tests (fast scales)."""

import pytest

from repro.cli import FIGURES, build_parser, main

FAST = ["--scale", "0.15", "--profile-blocks", "6000",
        "--eval-blocks", "8000", "--warmup", "1500"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "redis"])

    def test_figure_registry_covers_paper(self):
        expected = {
            "table1", "fig01", "fig03", "fig04", "fig05", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19", "fig21",
        }
        assert expected <= set(FIGURES)


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "wordpress" in out and "verilator" in out

    def test_profile(self, capsys):
        assert main(["profile", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "sampled L1I misses" in out
        assert "hottest miss lines" in out

    def test_plan_ispy(self, capsys):
        assert main(["plan", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "instructions:" in out
        assert "static increase:" in out

    def test_plan_asmdb(self, capsys):
        assert main(
            ["plan", "finagle-chirper", "--prefetcher", "asmdb"] + FAST
        ) == 0
        out = capsys.readouterr().out
        assert "asmdb plan" in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "finagle-chirper"] + FAST) == 0
        out = capsys.readouterr().out
        assert "ideal" in out and "ispy" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "apps", "--scale", "0.15"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "wordpress" in result.stdout
