"""AsmDB baseline tests."""

import pytest

from repro.baselines.asmdb import ASMDB_FANOUT_THRESHOLD, build_asmdb_plan
from repro.core.config import ISpyConfig
from repro.sim.cpu import simulate


class TestPlanShape:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_app = request.getfixturevalue("small_app")
        small_profile = request.getfixturevalue("small_profile")
        return build_asmdb_plan(small_app.program, small_profile)

    def test_default_threshold(self, result):
        assert result.report.fanout_threshold == ASMDB_FANOUT_THRESHOLD == 0.99

    def test_all_instructions_plain(self, result):
        assert set(result.plan.kind_counts()) == {"prefetch"}

    def test_single_line_targets(self, result):
        assert all(len(i.target_lines()) == 1 for i in result.plan)

    def test_covers_most_lines(self, result):
        assert result.report.coverage > 0.8

    def test_every_line_once(self, result):
        lines = [i.base_line for i in result.plan]
        assert len(lines) == len(set(lines))


class TestThresholdBehavior:
    def test_lower_threshold_lowers_coverage(self, small_app, small_profile):
        strict = build_asmdb_plan(
            small_app.program, small_profile, fanout_threshold=0.05
        )
        loose = build_asmdb_plan(
            small_app.program, small_profile, fanout_threshold=0.99
        )
        assert strict.report.coverage <= loose.report.coverage
        assert len(strict.plan) <= len(loose.plan)

    def test_plan_name_records_threshold(self, small_app, small_profile):
        result = build_asmdb_plan(
            small_app.program, small_profile, fanout_threshold=0.5
        )
        assert "0.50" in result.plan.name


class TestEndToEnd:
    def test_asmdb_speeds_up(self, small_app, small_profile, small_eval_trace):
        result = build_asmdb_plan(small_app.program, small_profile)
        base = simulate(
            small_app.program,
            small_eval_trace,
            warmup=4000,
            data_traffic=small_app.data_traffic(seed=1),
        )
        asmdb = simulate(
            small_app.program,
            small_eval_trace,
            plan=result.plan,
            warmup=4000,
            data_traffic=small_app.data_traffic(seed=1),
        )
        assert asmdb.cycles < base.cycles
        assert asmdb.l1i_mpki < base.l1i_mpki

    def test_custom_config_respected(self, small_app, small_profile):
        config = ISpyConfig(min_miss_samples=10_000)
        result = build_asmdb_plan(small_app.program, small_profile, config)
        assert len(result.plan) == 0
