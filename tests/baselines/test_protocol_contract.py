"""Shared contract tests over every registered zoo member.

Each registered prefetcher — whatever its mechanism — must honour the
:class:`repro.baselines.Prefetcher` protocol: typed train/simulate
results, determinism, truthful capability flags (shard replay is
bit-identical where advertised and rejected where not), and pristine
state between simulate calls.  The differential classes additionally
pin the protocol adapters to the pre-protocol call paths bit-for-bit,
so porting the baselines onto the registry changed no statistic.
"""

from __future__ import annotations

import pytest

from repro.baselines import protocol as zoo
from repro.core.config import DEFAULT_CONFIG
from repro.core.instructions import PrefetchPlan
from repro.io import stats_to_record
from repro.sim.stats import SimStats

ALL_PREFETCHERS = zoo.prefetcher_names()

EVAL_WARMUP = 2_000


@pytest.fixture(scope="module")
def view(small_app, small_profile):
    return zoo.ProfileView(small_app.program, small_profile)


@pytest.fixture(scope="module")
def contract_trace(small_app):
    """A short evaluation trace, disjoint from the profiling trace."""
    return small_app.trace(10_000, seed=small_app.spec.seed + 4242)


def eval_ctx(small_app, **overrides):
    """A fresh ReplayContext per call — data traffic is stateful."""
    kwargs = dict(
        data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
        warmup=EVAL_WARMUP,
    )
    kwargs.update(overrides)
    return zoo.ReplayContext(**kwargs)


@pytest.fixture(scope="module")
def contract_stats(small_app, view, contract_trace):
    """One simulate per registered member, shared by the assertions."""
    stats = {}
    for name in ALL_PREFETCHERS:
        prefetcher = zoo.get_prefetcher(name)
        stats[name] = prefetcher.simulate(
            view, contract_trace, eval_ctx(small_app)
        )
    return stats


@pytest.mark.parametrize("name", ALL_PREFETCHERS)
class TestProtocolContract:
    def test_capability_flags_are_booleans(self, name):
        prefetcher = zoo.get_prefetcher(name)
        capabilities = prefetcher.capabilities()
        assert set(capabilities) == {
            "requires_profile",
            "produces_plan",
            "supports_plan_replay",
            "supports_sharding",
            "supports_batch",
        }
        assert all(isinstance(flag, bool) for flag in capabilities.values())
        assert isinstance(prefetcher.planner, str) and prefetcher.planner
        assert isinstance(prefetcher.name, str) and prefetcher.name
        assert isinstance(prefetcher.cache_token, str) and prefetcher.cache_token

    def test_train_matches_produces_plan(self, name, view):
        prefetcher = zoo.get_prefetcher(name)
        plan = prefetcher.train(view)
        if prefetcher.produces_plan:
            assert isinstance(plan, PrefetchPlan)
            assert len(plan) > 0
            # plan-producing members must be storable: key parts are
            # a dict carrying at least the planner family
            parts = prefetcher.plan_key_parts()
            assert parts["planner"] == prefetcher.planner
        else:
            assert plan is None
            with pytest.raises(NotImplementedError):
                prefetcher.plan_key_parts()

    def test_simulate_returns_stats(self, name, contract_stats):
        stats = contract_stats[name]
        assert isinstance(stats, SimStats)
        assert stats.cycles > 0
        assert stats.program_instructions > 0

    def test_simulate_is_deterministic(
        self, name, small_app, view, contract_trace, contract_stats
    ):
        """A second simulate on a fresh instance is bit-identical —
        no hidden state leaks between runs or instances."""
        prefetcher = zoo.get_prefetcher(name)
        again = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        assert stats_to_record(again) == stats_to_record(contract_stats[name])

    def test_repeat_simulate_on_one_instance_is_pristine(
        self, name, small_app, view, contract_trace, contract_stats
    ):
        """Two simulates on the *same* instance agree: every call
        starts from a pristine hierarchy."""
        prefetcher = zoo.get_prefetcher(name)
        first = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        second = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        assert stats_to_record(first) == stats_to_record(second)

    def test_sharding_honoured_or_rejected(
        self, name, small_app, view, contract_trace, contract_stats
    ):
        prefetcher = zoo.get_prefetcher(name)
        ctx = eval_ctx(small_app, shard_insns=7_000)
        if prefetcher.supports_sharding:
            sharded = prefetcher.simulate(view, contract_trace, ctx)
            assert stats_to_record(sharded) == stats_to_record(
                contract_stats[name]
            )
        else:
            with pytest.raises(ValueError, match="shard"):
                prefetcher.simulate(view, contract_trace, ctx)

    def test_static_footprint_accounting(self, name, view):
        prefetcher = zoo.get_prefetcher(name)
        footprint = prefetcher.static_footprint(view)
        assert isinstance(footprint, zoo.Footprint)
        assert footprint.injected_bytes >= 0
        assert footprint.metadata_bytes >= 0
        if prefetcher.produces_plan:
            assert footprint.injected_bytes > 0
        else:
            assert footprint.injected_bytes == 0
            assert footprint.static_increase(view.text_bytes) == 0.0


@pytest.fixture(scope="module")
def ingested_view(small_app, tmp_path_factory):
    """An external-trace ProfileView: the contract app's block trace
    expanded to a ChampSim binary, re-ingested through the frontend,
    and profiled.  Returns ``(workload, view)``.

    The reconstructed program has different block boundaries (merged
    fall-through runs) and no synthesizer metadata — exactly the input
    shape a real external trace produces."""
    from repro.profiling.profiler import profile_execution
    from repro.workloads import ingest as ing

    root = tmp_path_factory.mktemp("contract-ingest")
    trace = small_app.trace(12_000, seed=small_app.spec.seed + 404)
    path = root / "contract.trace.gz"
    ing.write_champsim_fixture(path, small_app.program, trace, compress="gz")
    workload = ing.ingest_trace_file(path)
    profile = profile_execution(workload.program, workload.trace)
    return workload, zoo.ProfileView(workload.program, profile)


@pytest.mark.parametrize("name", ALL_PREFETCHERS)
class TestIngestedContract:
    """Every registered member trains and simulates on an externally
    ingested workload — no baseline may silently depend on the
    synthesizer's layout conventions or trace metadata."""

    INGEST_WARMUP = 1_000

    def _ctx(self):
        return zoo.ReplayContext(warmup=self.INGEST_WARMUP)

    def test_trains_on_ingested_profile(self, name, ingested_view):
        _workload, view = ingested_view
        prefetcher = zoo.get_prefetcher(name)
        plan = prefetcher.train(view)
        if prefetcher.produces_plan:
            assert isinstance(plan, PrefetchPlan)
            # the fixture is miss-heavy by construction, so a plan
            # producer that trains empty has ignored the profile
            assert len(plan) > 0
        else:
            assert plan is None

    def test_simulate_is_deterministic_across_instances(
        self, name, ingested_view
    ):
        workload, view = ingested_view
        first = zoo.get_prefetcher(name).simulate(
            view, workload.trace, self._ctx()
        )
        assert first.program_instructions > 0
        assert first.cycles > 0
        again = zoo.get_prefetcher(name).simulate(
            view, workload.trace, self._ctx()
        )
        assert stats_to_record(again) == stats_to_record(first)

    def test_repeat_simulate_stays_pristine(self, name, ingested_view):
        workload, view = ingested_view
        prefetcher = zoo.get_prefetcher(name)
        first = prefetcher.simulate(view, workload.trace, self._ctx())
        second = prefetcher.simulate(view, workload.trace, self._ctx())
        assert stats_to_record(second) == stats_to_record(first)


class TestDifferentialOldVsNew:
    """The protocol adapters reproduce the pre-registry call paths
    bit-for-bit (the PR's no-regression pin)."""

    def _protocol_stats(self, small_app, view, trace, name, **overrides):
        prefetcher = zoo.get_prefetcher(name, **overrides)
        return prefetcher.simulate(view, trace, eval_ctx(small_app))

    def test_ispy_plan_replay(self, small_app, small_profile, contract_trace, view):
        from repro.core.ispy import build_ispy_plan
        from repro.sim.cpu import simulate

        direct = simulate(
            small_app.program,
            contract_trace,
            plan=build_ispy_plan(
                small_app.program, small_profile, DEFAULT_CONFIG
            ).plan,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        ported = self._protocol_stats(small_app, view, contract_trace, "ispy")
        assert stats_to_record(ported) == stats_to_record(direct)

    def test_asmdb_plan_replay(self, small_app, small_profile, contract_trace, view):
        from repro.baselines.asmdb import build_asmdb_plan
        from repro.sim.cpu import simulate

        direct = simulate(
            small_app.program,
            contract_trace,
            plan=build_asmdb_plan(small_app.program, small_profile).plan,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        ported = self._protocol_stats(small_app, view, contract_trace, "asmdb")
        assert stats_to_record(ported) == stats_to_record(direct)

    def test_ideal(self, small_app, contract_trace, view):
        from repro.sim.cpu import simulate

        direct = simulate(small_app.program, contract_trace, ideal=True)
        prefetcher = zoo.get_prefetcher("ideal")
        ported = prefetcher.simulate(
            view, contract_trace, zoo.ReplayContext()
        )
        assert stats_to_record(ported) == stats_to_record(direct)

    def test_nextline(self, small_app, contract_trace, view):
        from repro.baselines.nextline import simulate_nextline

        direct = simulate_nextline(
            small_app.program,
            contract_trace,
            lines_ahead=1,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        ported = self._protocol_stats(small_app, view, contract_trace, "nextline")
        assert stats_to_record(ported) == stats_to_record(direct)

    def test_fdip(self, small_app, contract_trace, view):
        from repro.baselines.fdip import simulate_fdip

        direct = simulate_fdip(
            small_app.program,
            contract_trace,
            runahead=16,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        ported = self._protocol_stats(small_app, view, contract_trace, "fdip")
        assert stats_to_record(ported) == stats_to_record(direct)

    @pytest.mark.parametrize("variant,contiguous", [
        ("contiguous8", True),
        ("noncontiguous8", False),
    ])
    def test_window_studies(
        self, small_app, small_profile, contract_trace, view, variant, contiguous
    ):
        from dataclasses import replace

        from repro.baselines.contiguous import simulate_window_prefetcher

        kwargs = {}
        if not contiguous:
            # the Fig. 5 study filters on *all* profiled misses
            kwargs["config"] = replace(DEFAULT_CONFIG, min_miss_samples=1)
        direct = simulate_window_prefetcher(
            small_app.program,
            contract_trace,
            profile=small_profile,
            window=8,
            contiguous=contiguous,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
            **kwargs,
        )
        ported = self._protocol_stats(small_app, view, contract_trace, variant)
        assert stats_to_record(ported) == stats_to_record(direct)

    def test_plan_replay_adapter_is_run_plan(self, small_app, contract_trace):
        """PlanReplay(None) is exactly the no-prefetch baseline."""
        from repro.sim.cpu import simulate

        direct = simulate(
            small_app.program,
            contract_trace,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        replayer = zoo.PlanReplay(None)
        ported = replayer.simulate(
            zoo.ProfileView(small_app.program),
            contract_trace,
            eval_ctx(small_app),
        )
        assert stats_to_record(ported) == stats_to_record(direct)
        assert replayer.last_replay_backend is not None


class TestWindowPlanReplayGap:
    """The window prefetchers' two formulations deliberately diverge.

    ``WindowPrefetcher.simulate`` runs the paper's miss-*triggered*
    run-time mechanism, while ``train`` emits the injected-instruction
    formulation of the same windows.  Replaying that trained plan is a
    different experiment — prefetches fire at profiled sites instead
    of at run-time misses — so ``supports_plan_replay`` is False and
    the two must NOT agree.  This pins the gap as the current oracle:
    if a refactor ever makes them coincide (or changes either side),
    this test forces the capability flag and docs to be revisited
    rather than silently drifting.
    """

    @pytest.mark.parametrize("name", ["contiguous8", "noncontiguous8"])
    def test_flag_matches_reality(
        self, name, small_app, view, contract_trace
    ):
        prefetcher = zoo.get_prefetcher(name)
        assert prefetcher.supports_plan_replay is False
        assert prefetcher.supports_batch is False

        plan = prefetcher.train(view)
        assert len(plan) > 0
        mechanism = prefetcher.simulate(
            view, contract_trace, eval_ctx(small_app)
        )
        replayed = zoo.PlanReplay(plan).simulate(
            view, contract_trace, eval_ctx(small_app)
        )
        # the formulations answer different questions: miss-triggered
        # windows and site-injected windows disagree on both miss
        # count and issue count for this app
        assert stats_to_record(mechanism) != stats_to_record(replayed)
        assert mechanism.l1i_misses != replayed.l1i_misses
        assert mechanism.prefetches_issued != replayed.prefetches_issued
        # ... but each side is individually deterministic, so the gap
        # itself is a stable, reproducible quantity
        again = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        assert stats_to_record(again) == stats_to_record(mechanism)
        replay_again = zoo.PlanReplay(plan).simulate(
            view, contract_trace, eval_ctx(small_app)
        )
        assert stats_to_record(replay_again) == stats_to_record(replayed)


class TestManaMember:
    """MANA-specific guarantees beyond the shared contract."""

    def test_trains_nonempty_table_on_wordpress(self, view):
        from repro.baselines.mana import ManaResult

        prefetcher = zoo.get_prefetcher("mana")
        result = prefetcher.train_result(view)
        assert isinstance(result, ManaResult)
        assert len(result.table.regions) > 0
        # the exported plan view mirrors the table
        assert len(result.plan) == len(result.table.regions)

    def test_hobpt_compaction_saves_storage(self, view):
        prefetcher = zoo.get_prefetcher("mana")
        result = prefetcher.train_result(view)
        storage = result.table.storage()
        assert storage["compact_bits"] < storage["naive_bits"]
        assert storage["hob_patterns"] <= storage["records"]
        assert prefetcher.metadata_bytes(result) == storage["metadata_bytes"]
        assert prefetcher.metadata_bytes(result) > 0

    def test_reuses_harness_train_cache(self, small_app, view, contract_trace):
        """ctx.trained short-circuits retraining inside simulate."""
        prefetcher = zoo.get_prefetcher("mana")
        trained = prefetcher.train_result(view)
        with_cache = prefetcher.simulate(
            view, contract_trace, eval_ctx(small_app, trained=trained)
        )
        without = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        assert stats_to_record(with_cache) == stats_to_record(without)

    def test_covers_misses(self, small_app, view, contract_trace):
        """MANA's region chains must hide a real share of the
        baseline's misses on its training app."""
        from repro.sim.cpu import simulate

        base = simulate(
            small_app.program,
            contract_trace,
            data_traffic=small_app.data_traffic(seed=small_app.spec.seed + 777),
            warmup=EVAL_WARMUP,
        )
        prefetcher = zoo.get_prefetcher("mana")
        stats = prefetcher.simulate(view, contract_trace, eval_ctx(small_app))
        assert stats.prefetches_issued > 0
        assert stats.l1i_misses < base.l1i_misses
