"""Contiguous/Non-contiguous-8, next-line, and ideal-cache tests."""

import pytest

from repro.baselines.contiguous import (
    build_contiguous_plan,
    build_noncontiguous_plan,
    build_window_plan,
)
from repro.baselines.ideal import simulate_ideal
from repro.baselines.nextline import simulate_nextline
from repro.core.injection import frequent_miss_lines
from repro.core.config import DEFAULT_CONFIG
from repro.sim.cpu import simulate
from repro.sim.trace import BlockTrace

from ..conftest import make_program


class TestWindowPlans:
    def test_contiguous_has_full_vectors(self, small_app, small_profile):
        plan = build_contiguous_plan(small_app.program, small_profile, window=8)
        assert len(plan) > 0
        assert all(i.bit_vector == 0xFF for i in plan)
        assert all(len(i.target_lines()) == 9 for i in plan)

    def test_noncontiguous_targets_only_miss_lines(self, small_app, small_profile):
        plan = build_noncontiguous_plan(small_app.program, small_profile, window=8)
        miss_lines = {
            line for line, _ in frequent_miss_lines(small_profile, DEFAULT_CONFIG)
        }
        for instr in plan:
            for line in instr.target_lines():
                assert line in miss_lines

    def test_noncontiguous_prefetches_fewer_lines(self, small_app, small_profile):
        contiguous = build_contiguous_plan(small_app.program, small_profile)
        noncontiguous = build_noncontiguous_plan(small_app.program, small_profile)
        lines_c = sum(len(i.target_lines()) for i in contiguous)
        lines_n = sum(len(i.target_lines()) for i in noncontiguous)
        assert lines_n < lines_c

    def test_rejects_bad_window(self, small_app, small_profile):
        with pytest.raises(ValueError):
            build_window_plan(small_app.program, small_profile, window=0)

    def test_window_members_not_reemitted(self, small_app, small_profile):
        plan = build_noncontiguous_plan(small_app.program, small_profile)
        bases = [i.base_line for i in plan]
        assert len(bases) == len(set(bases))


class TestNextLine:
    def test_reduces_misses_on_sequential_code(self):
        # 32 consecutive one-line blocks swept repeatedly: a next-line
        # prefetcher should hide almost everything after warmup
        program = make_program([64] * 32)
        trace = BlockTrace(list(range(32)) * 20)
        base = simulate(program, trace, warmup=32)
        nextline = simulate_nextline(program, trace, lines_ahead=2, warmup=32)
        assert nextline.l1i_misses <= base.l1i_misses
        assert nextline.cycles <= base.cycles

    def test_zero_lines_ahead_equals_baseline(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3] * 3)
        base = simulate(tiny_program, trace)
        none = simulate_nextline(tiny_program, trace, lines_ahead=0)
        assert none.cycles == base.cycles
        assert none.prefetches_issued == 0

    def test_rejects_negative(self, tiny_program):
        with pytest.raises(ValueError):
            simulate_nextline(tiny_program, BlockTrace([0]), lines_ahead=-1)

    def test_issues_prefetches(self, tiny_program):
        trace = BlockTrace([0, 1, 2, 3])
        stats = simulate_nextline(tiny_program, trace, lines_ahead=1)
        assert stats.prefetches_issued > 0


class TestIdeal:
    def test_no_misses(self, small_app, small_eval_trace):
        stats = simulate_ideal(small_app.program, small_eval_trace)
        assert stats.l1i_misses == 0
        assert stats.frontend_stall_cycles == 0.0

    def test_fastest_possible(self, small_app, small_eval_trace):
        ideal = simulate_ideal(small_app.program, small_eval_trace)
        real = simulate(
            small_app.program,
            small_eval_trace,
            data_traffic=small_app.data_traffic(seed=1),
        )
        assert ideal.cycles < real.cycles

    def test_cycles_equal_compute(self, small_app, small_eval_trace):
        stats = simulate_ideal(small_app.program, small_eval_trace)
        assert stats.cycles == pytest.approx(stats.compute_cycles)
