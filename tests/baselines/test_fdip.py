"""FDIP (fetch-directed prefetching) baseline tests."""

import pytest

from repro.baselines.fdip import BimodalBTB, simulate_fdip
from repro.sim.cpu import simulate
from repro.sim.trace import BlockTrace

from ..conftest import make_program


class TestBimodalBTB:
    def test_untrained_predicts_nothing(self):
        assert BimodalBTB().predict(0) is None

    def test_learns_after_one_observation(self):
        btb = BimodalBTB()
        btb.train(0, 1)
        assert btb.predict(0) == 1

    def test_correct_training_returns_true(self):
        btb = BimodalBTB()
        btb.train(0, 1)
        assert btb.train(0, 1)

    def test_hysteresis_resists_single_flip(self):
        btb = BimodalBTB()
        for _ in range(4):
            btb.train(0, 1)
        btb.train(0, 2)  # one flip
        assert btb.predict(0) == 1  # still predicts the strong target

    def test_persistent_flip_retrains(self):
        btb = BimodalBTB()
        btb.train(0, 1)
        for _ in range(4):
            btb.train(0, 2)
        assert btb.predict(0) == 2


class TestSimulateFdip:
    def test_thrashing_loop_mostly_hidden(self):
        """A loop larger than the L1I (600 lines vs 512) thrashes the
        baseline on every lap; a trained FDIP runs ahead and hides
        most of those misses."""
        program = make_program([64] * 600)
        trace = BlockTrace(list(range(600)) * 5)
        base = simulate(program, trace, warmup=600)
        fdip = simulate_fdip(program, trace, runahead=16, warmup=600)
        assert base.l1i_misses > 1000  # the baseline thrashes
        assert fdip.prefetches_issued > 0
        # FDIP hides the bulk of the stall (late arrivals may remain)
        assert fdip.frontend_stall_cycles < 0.7 * base.frontend_stall_cycles

    def test_single_block_trace(self):
        program = make_program([64])
        stats = simulate_fdip(program, BlockTrace([0, 0, 0]))
        assert stats.l1i_misses == 1

    def test_rejects_bad_runahead(self):
        program = make_program([64])
        with pytest.raises(ValueError):
            simulate_fdip(program, BlockTrace([0]), runahead=0)

    def test_instruction_accounting_matches_baseline(self):
        program = make_program([64] * 6)
        trace = BlockTrace([0, 1, 2, 3, 4, 5] * 3)
        base = simulate(program, trace)
        fdip = simulate_fdip(program, trace)
        assert fdip.program_instructions == base.program_instructions
        assert fdip.l1i_accesses == base.l1i_accesses

    def test_branchy_code_defeats_runahead(self, small_app):
        """On a real branchy application FDIP helps less than the
        profile-guided schemes (the paper's Section VIII argument)."""
        trace = small_app.trace(15_000)
        base = simulate(
            small_app.program, trace, warmup=3000,
            data_traffic=small_app.data_traffic(seed=5),
        )
        fdip = simulate_fdip(
            small_app.program, trace, runahead=16, warmup=3000,
            data_traffic=small_app.data_traffic(seed=5),
        )
        # FDIP helps some but leaves a large fraction of misses
        assert fdip.l1i_misses < base.l1i_misses
        assert fdip.l1i_misses > 0.05 * base.l1i_misses

    def test_warmup_supported(self):
        program = make_program([64] * 10)
        trace = BlockTrace(list(range(10)) * 4)
        stats = simulate_fdip(program, trace, warmup=10)
        assert stats.l1i_accesses == 30
