"""Edge-case and failure-injection tests across the stack."""

import pytest

from repro.core.config import ISpyConfig
from repro.core.ispy import build_ispy_plan
from repro.baselines.asmdb import build_asmdb_plan
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.profiling.profiler import profile_execution
from repro.sim.cpu import simulate
from repro.sim.trace import BlockInfo, BlockTrace, Program

from .conftest import make_program


class TestDegenerateTraces:
    def test_single_block_trace(self):
        program = make_program([64])
        stats = simulate(program, BlockTrace([0]))
        assert stats.l1i_misses == 1
        assert stats.cycles > 0

    def test_single_block_repeated(self):
        program = make_program([64])
        stats = simulate(program, BlockTrace([0] * 100))
        assert stats.l1i_misses == 1
        assert stats.l1i_accesses == 100

    def test_giant_block_spans_many_lines(self):
        program = make_program([64 * 40])  # 40-line block
        stats = simulate(program, BlockTrace([0]))
        assert stats.l1i_accesses == 40
        assert stats.l1i_misses == 40

    def test_warmup_longer_than_trace(self):
        program = make_program([64, 64])
        stats = simulate(program, BlockTrace([0, 1]), warmup=100)
        # warmup boundary never reached: whole trace measured
        assert stats.l1i_accesses == 2


class TestDegenerateProfiles:
    def test_profile_with_no_misses(self):
        program = make_program([64])
        trace = BlockTrace([0] * 50)
        profile = profile_execution(program, trace)
        # warm after first touch: one cold miss only
        assert profile.sampled_miss_count == 1

    def test_plan_from_missless_profile_is_tiny(self):
        program = make_program([64])
        profile = profile_execution(program, BlockTrace([0] * 50))
        result = build_ispy_plan(program, profile)
        assert len(result.plan) == 0
        assert result.report.considered_lines == 0

    def test_asmdb_from_missless_profile(self):
        program = make_program([64])
        profile = profile_execution(program, BlockTrace([0] * 50))
        result = build_asmdb_plan(program, profile)
        assert len(result.plan) == 0

    def test_threshold_filters_everything(self):
        program = make_program([64] * 8)
        trace = BlockTrace(list(range(8)) * 3)
        profile = profile_execution(program, trace)
        config = ISpyConfig(min_miss_samples=10_000)
        result = build_ispy_plan(program, profile, config)
        assert len(result.plan) == 0
        assert result.report.coverage == 0.0


class TestHostilePlans:
    def test_prefetch_to_nonexistent_lines_is_harmless(self):
        program = make_program([64, 64])
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=0, base_line=10**9))
        stats = simulate(program, BlockTrace([0, 1]), plan=plan)
        assert stats.prefetches_issued == 1
        assert stats.prefetches_useful == 0

    def test_plan_site_never_executed(self):
        program = make_program([64, 64, 64])
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=2, base_line=5))
        stats = simulate(program, BlockTrace([0, 1]), plan=plan)
        assert stats.prefetch_instructions_executed == 0

    def test_self_prefetch_of_site_line(self):
        program = make_program([64, 64])
        line0 = program.block(0).lines[0]
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=0, base_line=line0))
        stats = simulate(program, BlockTrace([0] * 5), plan=plan)
        assert stats.cycles > 0  # no deadlock, no crash

    def test_many_instructions_at_one_site(self):
        program = make_program([64] * 4)
        plan = PrefetchPlan()
        for target in range(100, 140):
            plan.add(PrefetchInstr(site_block=0, base_line=target))
        stats = simulate(program, BlockTrace([0, 1, 2, 3]), plan=plan)
        assert stats.prefetch_instructions_executed == 40


class TestProgramBoundaries:
    def test_block_at_address_zero(self):
        program = Program([BlockInfo(0, 0, 64, 16)])
        stats = simulate(program, BlockTrace([0]))
        assert stats.l1i_misses == 1

    def test_sparse_address_space(self):
        blocks = [
            BlockInfo(0, 0x400000, 64, 16),
            BlockInfo(1, 0x40000000, 64, 16),  # ~1 GiB away
        ]
        program = Program(blocks)
        stats = simulate(program, BlockTrace([0, 1, 0, 1]))
        assert stats.l1i_misses == 2

    def test_adjacent_blocks_share_a_line(self):
        program = make_program([32, 16], base_address=0x400000)
        stats = simulate(program, BlockTrace([0, 1]))
        # both blocks sit in the same 64B line: one miss total
        assert stats.l1i_misses == 1
        assert stats.l1i_accesses == 2


class TestStatsUnderEmptyRuns:
    def test_mpki_zero_instructions_guard(self):
        from repro.sim.stats import SimStats

        stats = SimStats()
        stats.l1i_misses = 5
        assert stats.l1i_mpki == 0.0  # no instructions recorded
