"""DOT-rendering tests."""

from repro.cfg.graph import DynamicCFG
from repro.cfg.render import to_dot, write_dot


def sample_cfg():
    cfg = DynamicCFG()
    cfg.add_edge(0, 1, 5)
    cfg.add_edge(0, 2, 3)
    cfg.add_edge(1, 3, 5)
    cfg.add_edge(2, 3, 3)
    for block, count in ((0, 8), (1, 5), (2, 3), (3, 8)):
        cfg.add_execution(block, count)
    cfg.add_miss(3, line=77, count=4)
    return cfg


class TestToDot:
    def test_valid_digraph_structure(self):
        dot = to_dot(sample_cfg())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 4

    def test_nodes_carry_counts(self):
        dot = to_dot(sample_cfg())
        assert "exec=8" in dot
        assert "miss=4" in dot

    def test_edge_labels(self):
        dot = to_dot(sample_cfg())
        assert 'n0 -> n1 [label="5"]' in dot

    def test_highlighting(self):
        dot = to_dot(
            sample_cfg(),
            miss_block=3,
            injection_site=0,
            context_blocks=(1,),
        )
        assert "#f4cccc" in dot  # miss block red
        assert "#cfe2f3" in dot  # injection site blue
        assert "#d9ead3" in dot  # context green

    def test_custom_labels(self):
        dot = to_dot(sample_cfg(), block_labels={0: "Entry"})
        assert "Entry" in dot

    def test_max_nodes_prunes(self):
        cfg = DynamicCFG()
        for block in range(50):
            cfg.add_execution(block, 50 - block)
            if block:
                cfg.add_edge(block - 1, block)
        dot = to_dot(cfg, max_nodes=5)
        assert dot.count("[label=") <= 5 + 4  # nodes + surviving edges
        assert "n0 " in dot      # hottest kept
        assert "n49 " not in dot  # coldest pruned

    def test_min_edge_count_filters(self):
        dot = to_dot(sample_cfg(), min_edge_count=4)
        assert 'label="3"' not in dot

    def test_quote_escaping(self):
        dot = to_dot(sample_cfg(), block_labels={0: 'say "hi"'})
        assert '\\"hi\\"' in dot

    def test_write_dot(self, tmp_path):
        path = tmp_path / "cfg.dot"
        write_dot(sample_cfg(), path, name="test")
        assert path.read_text().startswith('digraph "test"')

    def test_real_profile_renders(self, small_profile):
        from repro.cfg.builder import build_dynamic_cfg

        dot = to_dot(build_dynamic_cfg(small_profile), max_nodes=50)
        assert dot.count("\n") > 20
