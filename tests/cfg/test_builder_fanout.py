"""CFG construction from profiles and fan-out estimation tests."""

from collections import Counter

import pytest

from repro.cfg.builder import build_dynamic_cfg
from repro.cfg.fanout import dynamic_fanout, label_occurrences, path_fanout
from repro.profiling.pebs import MissSample
from repro.profiling.profiler import ExecutionProfile


def profile_from(block_ids, miss_positions, line=999, cpb=4.0):
    cycles = [i * cpb for i in range(len(block_ids))]
    samples = [
        MissSample(i, block_ids[i], line, cycles[i]) for i in miss_positions
    ]
    return ExecutionProfile(
        program_name="synthetic",
        block_ids=list(block_ids),
        block_cycles=cycles,
        miss_samples=samples,
        edge_counts=Counter(zip(block_ids, block_ids[1:])),
        block_counts=Counter(block_ids),
        cumulative_instructions=[4 * i for i in range(len(block_ids))],
    )


class TestBuildDynamicCFG:
    def test_edge_count_conservation(self, small_profile):
        cfg = build_dynamic_cfg(small_profile)
        assert cfg.total_edge_weight() == len(small_profile.block_ids) - 1

    def test_execution_counts_match_trace(self, small_profile):
        cfg = build_dynamic_cfg(small_profile)
        total = sum(node.execution_count for node in cfg.nodes())
        assert total == len(small_profile.block_ids)

    def test_misses_annotated(self, small_profile):
        cfg = build_dynamic_cfg(small_profile)
        annotated = sum(node.miss_count for node in cfg.nodes())
        assert annotated == small_profile.sampled_miss_count

    def test_small_synthetic(self):
        profile = profile_from([1, 2, 3, 1, 2, 3], miss_positions=[2, 5])
        cfg = build_dynamic_cfg(profile)
        assert cfg.edge_count(1, 2) == 2
        assert cfg.node(3).miss_count == 2


class TestLabelOccurrences:
    def test_labels_match_construction(self):
        # site=5 at positions 0 and 3; miss at position 2 only
        profile = profile_from([5, 1, 9, 5, 1, 2], miss_positions=[2])
        labels = label_occurrences(profile, 5, 999, max_cycles=100.0)
        assert labels.indices == (0, 3)
        assert labels.leads_to_miss == (True, False)
        assert labels.miss_probability == 0.5
        assert labels.fanout == 0.5

    def test_window_limits_labels(self):
        profile = profile_from([5, 1, 1, 1, 1, 9], miss_positions=[5])
        labels = label_occurrences(profile, 5, 999, max_cycles=4.0)
        assert labels.leads_to_miss == (False,)

    def test_occurrence_sampling(self):
        profile = profile_from([5] * 1000 + [9], miss_positions=[1000])
        labels = label_occurrences(profile, 5, 999, 100.0, max_occurrences=10)
        assert labels.total == 10


class TestDynamicFanout:
    def test_always_leads_zero_fanout(self):
        profile = profile_from([5, 9] * 10, miss_positions=list(range(1, 20, 2)))
        assert dynamic_fanout(profile, 5, 999, 100.0) == 0.0

    def test_never_leads_full_fanout(self):
        profile = profile_from([5, 1] * 10, miss_positions=[])
        assert dynamic_fanout(profile, 5, 999, 100.0) == 1.0


class TestPathFanout:
    def test_single_path_always_to_miss(self):
        profile = profile_from([5, 1, 9] * 10, miss_positions=list(range(2, 30, 3)))
        assert path_fanout(profile, 5, 999, 100.0, path_length=2) == 0.0

    def test_many_paths_one_to_miss(self):
        # site 5 followed by 8 distinct forward paths; only one misses
        blocks = []
        for variant in range(8):
            blocks.extend([5, 10 + variant, 9 if variant == 0 else 30 + variant])
        miss_positions = [2]  # the variant-0 tail
        profile = profile_from(blocks, miss_positions)
        fanout = path_fanout(profile, 5, 999, 1000.0, path_length=2)
        assert fanout == pytest.approx(1.0 - 1.0 / 8.0)

    def test_unweighted_by_frequency(self):
        """A hot path counts once: execution-weighted fan-out is low
        but path fan-out stays high."""
        blocks = []
        # hot path to miss repeated 20x, 9 distinct cold paths without
        for _ in range(20):
            blocks.extend([5, 10, 9])
        for variant in range(9):
            blocks.extend([5, 11 + variant, 40 + variant])
        miss_positions = [i for i in range(2, 60, 3)]
        profile = profile_from(blocks, miss_positions)
        execution = dynamic_fanout(profile, 5, 999, 1000.0)
        paths = path_fanout(profile, 5, 999, 1000.0, path_length=2)
        assert execution < 0.4
        assert paths == pytest.approx(0.9)

    def test_no_occurrences(self):
        profile = profile_from([1, 2, 3], miss_positions=[])
        assert path_fanout(profile, 99, 999, 100.0) == 1.0
