"""Dynamic-CFG data-structure tests."""

from repro.cfg.graph import DynamicCFG


def diamond_cfg():
    """A -> {B, C} -> D with weights 3/1."""
    cfg = DynamicCFG()
    cfg.add_execution(0, 4)
    cfg.add_execution(1, 3)
    cfg.add_execution(2, 1)
    cfg.add_execution(3, 4)
    cfg.add_edge(0, 1, 3)
    cfg.add_edge(0, 2, 1)
    cfg.add_edge(1, 3, 3)
    cfg.add_edge(2, 3, 1)
    return cfg


class TestConstruction:
    def test_node_counts(self):
        cfg = diamond_cfg()
        assert len(cfg) == 4
        assert cfg.node(0).execution_count == 4

    def test_edges(self):
        cfg = diamond_cfg()
        assert cfg.edge_count(0, 1) == 3
        assert cfg.edge_count(0, 2) == 1
        assert cfg.edge_count(1, 0) == 0

    def test_successors_predecessors(self):
        cfg = diamond_cfg()
        assert dict(cfg.successors(0)) == {1: 3, 2: 1}
        assert dict(cfg.predecessors(3)) == {1: 3, 2: 1}

    def test_total_edge_weight(self):
        assert diamond_cfg().total_edge_weight() == 8

    def test_edge_creates_nodes(self):
        cfg = DynamicCFG()
        cfg.add_edge(10, 11)
        assert 10 in cfg and 11 in cfg


class TestMissAnnotation:
    def test_miss_counting(self):
        cfg = diamond_cfg()
        cfg.add_miss(3, line=77)
        cfg.add_miss(3, line=77)
        cfg.add_miss(3, line=78)
        node = cfg.node(3)
        assert node.miss_count == 3
        assert node.miss_lines == {77: 2, 78: 1}

    def test_miss_blocks_sorted(self):
        cfg = diamond_cfg()
        cfg.add_miss(1, 5)
        cfg.add_miss(3, 6, count=4)
        blocks = cfg.miss_blocks()
        assert [n.block_id for n in blocks] == [3, 1]


class TestReachability:
    def test_reachable_from_entry(self):
        cfg = diamond_cfg()
        assert cfg.reachable_from(0) == {1, 2, 3}

    def test_reachable_with_hop_limit(self):
        cfg = diamond_cfg()
        assert cfg.reachable_from(0, max_hops=1) == {1, 2}

    def test_sink_reaches_nothing(self):
        cfg = diamond_cfg()
        assert cfg.reachable_from(3) == set()


class TestNetworkxExport:
    def test_export_round_trip(self):
        cfg = diamond_cfg()
        cfg.add_miss(3, 77)
        graph = cfg.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph[0][1]["weight"] == 3
        assert graph.nodes[3]["misses"] == 1
