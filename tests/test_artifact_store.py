"""Tests for the persistent artifact cache (repro.io.ArtifactStore)."""

from __future__ import annotations

import gzip
import json

import pytest

import repro.io as repro_io
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.io import (
    ArtifactStore,
    artifact_key,
    plan_fingerprint,
    stats_from_record,
    stats_to_record,
)
from repro.sim.cpu import simulate
from repro.sim.stats import SimStats


def make_plan(name: str = "test-plan") -> PrefetchPlan:
    plan = PrefetchPlan(name)
    plan.add(PrefetchInstr(site_block=3, base_line=100, covers=(100,)))
    plan.add(
        PrefetchInstr(
            site_block=7,
            base_line=200,
            bit_vector=0b101,
            context_mask=0x5,
            context_blocks=(1, 2),
            covers=(200, 202, 204),
        )
    )
    return plan


def make_stats() -> SimStats:
    stats = SimStats()
    stats.compute_cycles = 123.456789012345
    stats.frontend_stall_cycles = 98.7654321
    stats.program_instructions = 100_000
    stats.l1i_accesses = 45_000
    stats.l1i_misses = 1_234
    stats.prefetches_issued = 321
    stats.prefetches_useful = 300
    stats.record_miss_level("l2")
    stats.record_miss_level("memory")
    stats.false_positive_rate = 0.0625  # type: ignore[attr-defined]
    return stats


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestKeys:
    def test_key_is_deterministic(self):
        parts = {"app": "x", "settings": {"scale": 0.5}}
        assert artifact_key("stats", parts) == artifact_key("stats", dict(parts))

    def test_key_varies_with_every_part(self):
        base = {"app": "x", "threshold": 0.9}
        k = artifact_key("plan", base)
        assert artifact_key("plan", {**base, "app": "y"}) != k
        assert artifact_key("plan", {**base, "threshold": 0.95}) != k
        assert artifact_key("stats", base) != k

    def test_plan_fingerprint_tracks_content(self):
        assert plan_fingerprint(None) == "no-plan"
        a = make_plan("a")
        b = make_plan("b")  # same instructions, different name
        assert plan_fingerprint(a) == plan_fingerprint(b)
        b.add(PrefetchInstr(site_block=9, base_line=50))
        assert plan_fingerprint(a) != plan_fingerprint(b)


class TestStatsRecord:
    def test_roundtrip_is_lossless(self):
        stats = make_stats()
        restored = stats_from_record(
            json.loads(json.dumps(stats_to_record(stats)))
        )
        assert stats_to_record(restored) == stats_to_record(stats)
        assert restored.compute_cycles == stats.compute_cycles
        assert restored.miss_level_counts == {"l2": 1, "memory": 1}
        assert restored.false_positive_rate == 0.0625

    def test_missing_false_positive_rate_tolerated(self):
        record = stats_to_record(SimStats())
        record.pop("false_positive_rate", None)
        stats_from_record(record)


class TestStoreRoundtrips:
    def test_plan_hit_vs_miss(self, store):
        key = artifact_key("plan", {"app": "x"})
        assert store.load_plan(key) is None
        assert not store.has("plans", key)
        plan = make_plan()
        store.save_plan(key, plan)
        assert store.has("plans", key)
        loaded = store.load_plan(key)
        assert loaded is not None
        assert repro_io.plan_to_dict(loaded) == repro_io.plan_to_dict(plan)

    def test_stats_hit_vs_miss(self, store):
        key = artifact_key("stats", {"app": "x"})
        assert store.load_stats(key) is None
        stats = make_stats()
        store.save_stats(key, stats)
        loaded = store.load_stats(key)
        assert loaded is not None
        assert stats_to_record(loaded) == stats_to_record(stats)

    def test_profile_roundtrip_preserves_baseline_stats(
        self, store, small_app, small_profile
    ):
        key = artifact_key("profile", {"app": small_app.name})
        store.save_profile(key, small_profile)
        loaded = store.load_profile(key)
        assert loaded is not None
        assert loaded.miss_counts_by_line() == small_profile.miss_counts_by_line()
        assert loaded.baseline_stats is not None
        assert stats_to_record(loaded.baseline_stats) == stats_to_record(
            small_profile.baseline_stats
        )

    def test_cached_plan_simulates_identically(
        self, store, small_app, small_eval_trace
    ):
        plan = make_plan()
        key = artifact_key("plan", {"app": small_app.name})
        store.save_plan(key, plan)
        loaded = store.load_plan(key)
        fresh = simulate(small_app.program, small_eval_trace, plan=plan)
        cached = simulate(small_app.program, small_eval_trace, plan=loaded)
        assert stats_to_record(fresh) == stats_to_record(cached)


class TestInvalidation:
    def test_corrupt_payload_is_a_miss(self, store):
        key = artifact_key("stats", {"app": "x"})
        store.save_stats(key, make_stats())
        store._path("stats", key).write_text("{not json")
        assert store.load_stats(key) is None

    def test_truncated_gzip_profile_is_a_miss(self, store):
        key = artifact_key("profile", {"app": "x"})
        path = store._path("profiles", key)
        path.write_bytes(gzip.compress(b'{"format":')[:-4])
        assert store.load_profile(key) is None

    def test_wrong_format_payload_is_a_miss(self, store):
        key = artifact_key("plan", {"app": "x"})
        store._path("plans", key).write_text(
            json.dumps({"format": "something-else", "version": 1})
        )
        assert store.load_plan(key) is None

    def test_schema_version_bump_orphans_old_artifacts(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "cache"
        key = artifact_key("stats", {"app": "x"})
        ArtifactStore(root).save_stats(key, make_stats())

        monkeypatch.setattr(repro_io, "CACHE_SCHEMA_VERSION", 999)
        bumped = ArtifactStore(root)
        # same parts now produce a different key AND a different
        # directory, so the old artifact can never be served
        assert artifact_key("stats", {"app": "x"}) != key
        assert bumped.load_stats(key) is None
        assert bumped.base.name == "v999"
