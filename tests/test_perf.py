"""Tests for the per-stage timing registry (repro.perf)."""

from __future__ import annotations

import pickle
import time

from repro.perf import REGISTRY, PerfRegistry, registry


class TestStageCounter:
    def test_stage_accumulates_calls_seconds_units(self):
        reg = PerfRegistry()
        with reg.stage("simulate", units=100):
            pass
        with reg.stage("simulate", units=50):
            time.sleep(0.002)
        entry = reg.counter("simulate")
        assert entry.calls == 2
        assert entry.units == 150
        assert entry.seconds > 0.0

    def test_stage_records_time_on_exception(self):
        reg = PerfRegistry()
        try:
            with reg.stage("simulate"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert reg.calls("simulate") == 1

    def test_count_is_instantaneous(self):
        reg = PerfRegistry()
        reg.count("store-hit:stats")
        reg.count("store-hit:stats")
        assert reg.calls("store-hit:stats") == 2
        assert reg.seconds("store-hit:stats") == 0.0

    def test_units_per_second(self):
        reg = PerfRegistry()
        reg.add("simulate", seconds=2.0, units=100)
        assert reg.counter("simulate").units_per_second == 50.0

    def test_missing_counter_accessors_default_to_zero(self):
        reg = PerfRegistry()
        assert reg.calls("nope") == 0
        assert reg.seconds("nope") == 0.0
        assert reg.units("nope") == 0


class TestSnapshotMerge:
    def test_snapshot_roundtrip_through_pickle(self):
        reg = PerfRegistry()
        reg.add("profile", seconds=1.5, units=1000)
        snapshot = pickle.loads(pickle.dumps(reg.snapshot()))
        other = PerfRegistry()
        other.merge(snapshot)
        assert other.calls("profile") == 1
        assert other.seconds("profile") == 1.5
        assert other.units("profile") == 1000

    def test_merge_accumulates_into_existing(self):
        parent = PerfRegistry()
        parent.add("simulate", seconds=1.0, units=10)
        worker = PerfRegistry()
        worker.add("simulate", seconds=2.0, units=20)
        worker.add("profile", seconds=0.5)
        parent.merge(worker.snapshot())
        assert parent.calls("simulate") == 2
        assert parent.seconds("simulate") == 3.0
        assert parent.units("simulate") == 30
        assert parent.calls("profile") == 1

    def test_reset(self):
        reg = PerfRegistry()
        reg.count("x")
        reg.reset()
        assert reg.calls("x") == 0

    def test_merge_disjoint_snapshots(self):
        parent = PerfRegistry()
        parent.add("profile", seconds=1.0, units=5)
        worker = PerfRegistry()
        worker.add("simulate", seconds=2.0, units=20)
        parent.merge(worker.snapshot())
        assert parent.calls("profile") == 1
        assert parent.calls("simulate") == 1
        assert parent.seconds("simulate") == 2.0
        assert set(parent.snapshot()) == {"profile", "simulate"}

    def test_merge_empty_snapshot_is_noop(self):
        reg = PerfRegistry()
        reg.count("x")
        reg.merge(PerfRegistry().snapshot())
        assert reg.calls("x") == 1
        assert set(reg.snapshot()) == {"x"}


class TestBackendCounts:
    def test_counts_by_backend_suffix(self):
        reg = PerfRegistry()
        reg.count("simulate:columnar")
        reg.count("simulate:columnar")
        reg.count("simulate:reference")
        reg.count("simulate")  # the stage timer itself is not a backend
        assert reg.backend_counts() == {"columnar": 2, "reference": 1}

    def test_bare_prefix_counter_excluded(self):
        reg = PerfRegistry()
        reg.count("simulate:")  # pathological: prefix with empty suffix
        reg.count("simulate:columnar")
        assert reg.backend_counts() == {"columnar": 1}

    def test_empty_registry(self):
        assert PerfRegistry().backend_counts() == {}

    def test_custom_prefix(self):
        reg = PerfRegistry()
        reg.count("store-hit:stats")
        reg.count("simulate:columnar")
        assert reg.backend_counts(prefix="store-hit:") == {"stats": 1}


class TestReport:
    def test_report_lists_stages_and_total(self):
        reg = PerfRegistry()
        reg.add("simulate", seconds=2.0, units=100)
        reg.count("store-hit:stats")
        text = reg.report()
        assert "simulate" in text
        assert "store-hit:stats" in text
        assert "total" in text
        assert "2.000" in text

    def test_report_on_empty_registry(self):
        assert "total" in PerfRegistry().report()


def test_registry_helper_prefers_override():
    override = PerfRegistry()
    assert registry(override) is override
    assert registry(None) is REGISTRY
