"""Application-synthesizer tests."""

import dataclasses

import pytest

from repro.workloads.cfgmodel import Branch, Call, TypedBranch
from repro.workloads.synthesis import AppSpec, scaled_spec, synthesize


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        seed=7,
        request_types=3,
        request_mix=(0.5, 0.3, 0.2),
        functions_per_layer=(6, 8),
        shared_per_layer=2,
        stages_range=(3, 6),
    )
    defaults.update(overrides)
    return AppSpec(**defaults)


class TestSpecValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            tiny_spec(request_mix=(0.5, 0.3, 0.3))

    def test_mix_length_must_match(self):
        with pytest.raises(ValueError):
            tiny_spec(request_types=2)

    def test_stage_mass_capped(self):
        with pytest.raises(ValueError):
            tiny_spec(straightline=0.5, diamond_prob=0.4, call_prob=0.3)

    def test_invalid_stage_range(self):
        with pytest.raises(ValueError):
            tiny_spec(stages_range=(5, 3))


class TestSynthesizedStructure:
    @pytest.fixture(scope="class")
    def app(self):
        return synthesize(tiny_spec())

    def test_program_and_model_agree(self, app):
        assert set(app.model.block_ids()) == set(app.program.block_ids())

    def test_dispatcher_branches_over_request_types(self, app):
        term = app.model.terminator(app.dispatch_block)
        assert isinstance(term, Branch)
        assert len(term.targets) == 3
        assert term.probs == app.spec.request_mix

    def test_stubs_call_handlers(self, app):
        term = app.model.terminator(app.dispatch_block)
        for stub, handler in zip(term.targets, app.handler_entries):
            stub_term = app.model.terminator(stub)
            assert isinstance(stub_term, Call)
            assert stub_term.callee == handler
            assert stub_term.link == app.dispatch_block

    def test_type_markers_cover_all_types(self, app):
        assert sorted(app.model.type_markers.values()) == [0, 1, 2]

    def test_every_handler_reachable_in_walk(self, app):
        trace = app.trace(6000)
        for handler in app.handler_entries:
            assert handler in trace.block_ids

    def test_deterministic_synthesis(self):
        a = synthesize(tiny_spec())
        b = synthesize(tiny_spec())
        assert a.program.text_bytes == b.program.text_bytes
        assert a.trace(500).block_ids == b.trace(500).block_ids

    def test_different_seeds_differ(self):
        a = synthesize(tiny_spec())
        b = synthesize(tiny_spec(seed=8))
        assert a.trace(500).block_ids != b.trace(500).block_ids


class TestTypedStages:
    def test_shared_functions_get_typed_dispatch(self):
        spec = tiny_spec(
            typed_stage_prob_shared=1.0,
            typed_stage_prob=0.0,
            stages_range=(4, 4),
        )
        app = synthesize(spec)
        typed = [
            b
            for b in app.model.block_ids()
            if isinstance(app.model.terminator(b), TypedBranch)
        ]
        assert typed
        for block in typed:
            term = app.model.terminator(block)
            assert len(term.targets) == spec.request_types

    def test_no_typed_stages_when_disabled(self):
        spec = tiny_spec(typed_stage_prob_shared=0.0, typed_stage_prob=0.0)
        app = synthesize(spec)
        assert not any(
            isinstance(app.model.terminator(b), TypedBranch)
            for b in app.model.block_ids()
        )


class TestTraces:
    def test_trace_metadata(self):
        app = synthesize(tiny_spec())
        trace = app.trace(100, input_name="x")
        assert trace.metadata["app"] == "tiny"
        assert trace.metadata["input"] == "x"
        assert trace.metadata["length"] == 100

    def test_mix_override_changes_walk(self):
        app = synthesize(tiny_spec())
        default = app.trace(2000)
        skewed = app.trace(2000, mix=(0.0, 0.0, 1.0))
        assert default.block_ids != skewed.block_ids
        # only handler 2's stub should be dispatched
        stub_term = app.model.terminator(app.dispatch_block)
        unused_stubs = set(stub_term.targets[:2])
        assert not unused_stubs & set(skewed.block_ids)

    def test_mix_length_checked(self):
        app = synthesize(tiny_spec())
        with pytest.raises(ValueError):
            app.trace(100, mix=(1.0,))

    def test_data_traffic_factory(self):
        app = synthesize(tiny_spec())
        model = app.data_traffic()
        assert model is not None
        assert model.rate == app.spec.data_rate_per_instruction
        silent = synthesize(tiny_spec(data_rate_per_instruction=0.0))
        assert silent.data_traffic() is None


class TestScaledSpec:
    def test_scaling_down(self):
        spec = tiny_spec(functions_per_layer=(20, 30))
        small = scaled_spec(spec, 0.5)
        assert small.functions_per_layer == (10, 15)

    def test_scale_floor_preserves_shared(self):
        spec = tiny_spec(functions_per_layer=(20, 30), shared_per_layer=2)
        smallest = scaled_spec(spec, 0.01)
        assert all(c >= 3 for c in smallest.functions_per_layer)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(tiny_spec(), 0.0)
