"""Application registry and input-mix tests."""

import pytest

from repro.sim.params import CACHE_LINE_BYTES
from repro.workloads.apps import APP_NAMES, app_spec, build_app, get_app
from repro.workloads.inputs import INPUT_NAMES, input_mixes, trace_for_input


class TestRegistry:
    def test_nine_apps(self):
        assert len(APP_NAMES) == 9

    def test_expected_names(self):
        assert set(APP_NAMES) == {
            "cassandra",
            "drupal",
            "finagle-chirper",
            "finagle-http",
            "kafka",
            "mediawiki",
            "tomcat",
            "verilator",
            "wordpress",
        }

    def test_all_specs_valid(self):
        for name in APP_NAMES:
            spec = app_spec(name)
            assert spec.name == name
            assert abs(sum(spec.request_mix) - 1.0) < 1e-9

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            app_spec("memcached")

    def test_distinct_seeds(self):
        seeds = {app_spec(name).seed for name in APP_NAMES}
        assert len(seeds) == 9


class TestBuildAll:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_builds_at_small_scale(self, name):
        app = build_app(name, scale=0.15)
        assert len(app.program) > 100
        # instruction footprint comfortably exceeds the 32 KiB L1I
        assert app.program.footprint_bytes > 64 * 1024
        trace = app.trace(2000)
        assert len(trace) == 2000

    def test_get_app_caches(self):
        a = get_app("kafka", scale=0.15)
        b = get_app("kafka", scale=0.15)
        assert a is b

    def test_build_app_fresh(self):
        a = build_app("kafka", scale=0.15)
        b = build_app("kafka", scale=0.15)
        assert a is not b

    def test_verilator_is_straightline_heavy(self):
        spec = app_spec("verilator")
        others = [app_spec(n) for n in APP_NAMES if n != "verilator"]
        assert spec.straightline > max(o.straightline for o in others)
        assert spec.branch_bias > max(o.branch_bias for o in others)

    def test_php_apps_have_largest_footprints(self):
        footprints = {
            name: sum(app_spec(name).functions_per_layer) for name in APP_NAMES
        }
        largest_three = set(
            sorted(footprints, key=footprints.get, reverse=True)[:3]
        )
        assert largest_three == {"wordpress", "drupal", "mediawiki"}


class TestInputMixes:
    @pytest.fixture(scope="class")
    def app(self):
        return build_app("drupal", scale=0.15)

    def test_five_inputs(self, app):
        mixes = input_mixes(app)
        assert set(mixes) == set(INPUT_NAMES)
        assert len(INPUT_NAMES) == 5

    def test_all_mixes_normalized(self, app):
        for mix in input_mixes(app).values():
            assert abs(sum(mix) - 1.0) < 1e-9
            assert all(w >= 0 for w in mix)

    def test_default_matches_spec(self, app):
        mixes = input_mixes(app)
        for got, expected in zip(mixes["default"], app.spec.request_mix):
            assert got == pytest.approx(expected)

    def test_inputs_are_distinct(self, app):
        mixes = input_mixes(app)
        assert len({tuple(round(w, 9) for w in m) for m in mixes.values()}) == 5

    def test_rotation_moves_dominant_type(self, app):
        mixes = input_mixes(app)
        default_peak = max(range(len(mixes["default"])), key=mixes["default"].__getitem__)
        rotated_peak = max(range(len(mixes["input-3"])), key=mixes["input-3"].__getitem__)
        assert default_peak != rotated_peak

    def test_trace_for_input(self, app):
        trace = trace_for_input(app, "input-2", length=500)
        assert len(trace) == 500
        assert trace.metadata["input"] == "input-2"

    def test_unknown_input_rejected(self, app):
        with pytest.raises(KeyError):
            trace_for_input(app, "input-99", length=100)
