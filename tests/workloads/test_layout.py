"""Layout-builder tests: contiguity, alignment, bookkeeping."""

import pytest

from repro.sim.params import CACHE_LINE_BYTES
from repro.workloads.layout import (
    LayoutBuilder,
    blocks_by_function,
    function_line_span,
)


def build_two_functions():
    builder = LayoutBuilder()
    builder.begin_function("f")
    f_blocks = [builder.add_block(40) for _ in range(3)]
    builder.end_function()
    builder.begin_function("g")
    g_blocks = [builder.add_block(40) for _ in range(2)]
    builder.end_function()
    program, functions = builder.build("two")
    return program, functions, f_blocks, g_blocks


class TestLayout:
    def test_blocks_within_function_contiguous(self):
        program, _, f_blocks, _ = build_two_functions()
        blocks = [program.block(b) for b in f_blocks]
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.address + prev.size_bytes == cur.address

    def test_functions_line_aligned(self):
        program, functions, _, _ = build_two_functions()
        for layout in functions:
            assert layout.start_address % CACHE_LINE_BYTES == 0

    def test_function_ids_assigned(self):
        program, functions, f_blocks, g_blocks = build_two_functions()
        assert program.block(f_blocks[0]).function_id == functions[0].function_id
        assert program.block(g_blocks[0]).function_id == functions[1].function_id

    def test_block_ids_sequential(self):
        _, _, f_blocks, g_blocks = build_two_functions()
        assert f_blocks == [0, 1, 2]
        assert g_blocks == [3, 4]

    def test_minimum_block_size_enforced(self):
        builder = LayoutBuilder()
        builder.begin_function("f")
        block_id = builder.add_block(1)
        builder.end_function()
        program, _ = builder.build("tiny")
        assert program.block(block_id).size_bytes >= 4
        assert program.block(block_id).instruction_count >= 1

    def test_instruction_count_scales_with_bytes(self):
        builder = LayoutBuilder()
        builder.begin_function("f")
        block_id = builder.add_block(40)
        builder.end_function()
        program, _ = builder.build("x")
        assert program.block(block_id).instruction_count == 10


class TestBuilderDiscipline:
    def test_add_block_outside_function_rejected(self):
        with pytest.raises(RuntimeError):
            LayoutBuilder().add_block(16)

    def test_nested_functions_rejected(self):
        builder = LayoutBuilder()
        builder.begin_function("f")
        with pytest.raises(RuntimeError):
            builder.begin_function("g")

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            LayoutBuilder().end_function()

    def test_build_with_open_function_rejected(self):
        builder = LayoutBuilder()
        builder.begin_function("f")
        builder.add_block(16)
        with pytest.raises(RuntimeError):
            builder.build("x")

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            LayoutBuilder().build("empty")


class TestHelpers:
    def test_function_line_span(self):
        program, functions, _, _ = build_two_functions()
        first, last = function_line_span(functions[0], program)
        assert first <= last
        assert first == functions[0].start_address // CACHE_LINE_BYTES

    def test_blocks_by_function(self):
        program, functions, f_blocks, g_blocks = build_two_functions()
        groups = blocks_by_function(program)
        assert groups[functions[0].function_id] == f_blocks
        assert groups[functions[1].function_id] == g_blocks
