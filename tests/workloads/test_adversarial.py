"""Property tests for the adversarial workload generators.

Each generator exists to provoke one specific mechanism, so each gets
a property pinning that provocation: ``hash-alias`` must collapse the
16-bit context hash onto its two alias bits, ``bloom-storm`` must trip
the runtime-hash counter overflow on any LBR deeper than the counter
width (and the columnar backends' bail-out paths must survive it), and
``phase-chain`` must actually change its instruction footprint between
phases.  Registry integration — the three are first-class apps next to
the paper's nine — is pinned here too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.hashing import context_bit_positions, context_mask
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.sim.cpu import CoreSimulator
from repro.sim.params import line_of
from repro.sim.stats import SimStats
from repro.sim.streaming import run_plan_batch
from repro.workloads.adversarial import (
    ADVERSARIAL_APP_NAMES,
    ALIAS_BITS,
    BLOOM_STORM_BIT,
    HASH_BITS,
    PHASE_COUNT,
    PhasedApp,
    mine_aliased_addresses,
    phase_mix,
)
from repro.workloads.apps import ALL_APP_NAMES, APP_NAMES, get_app

from ..conftest import (
    ADVERSARIAL_TEST_SCALE,
    adversarial_app,
    adversarial_workloads,
)


def _positions(program, hash_bits=HASH_BITS):
    """The set of hash-bit positions the program's blocks land on."""
    return {
        context_bit_positions(block.address, hash_bits)[0]
        for block in program
    }


def _conditional_plan(program):
    """A minimal plan with one conditional site, enough to arm the
    runtime-hash tracker."""
    blocks = sorted(program, key=lambda b: b.block_id)
    ctx = (blocks[0].block_id, blocks[1].block_id)
    plan = PrefetchPlan("bloom-probe")
    plan.extend([
        PrefetchInstr(
            site_block=blocks[2].block_id,
            base_line=line_of(blocks[3].address),
            bit_vector=0,
            context_mask=context_mask(
                [program.block(b).address for b in ctx], HASH_BITS
            ),
            context_blocks=ctx,
        )
    ])
    return plan


class TestRegistry:
    """The adversarial roster rides next to the paper's nine apps."""

    def test_paper_roster_untouched(self):
        assert len(APP_NAMES) == 9
        assert ALL_APP_NAMES == APP_NAMES + ADVERSARIAL_APP_NAMES

    @pytest.mark.parametrize("name", ADVERSARIAL_APP_NAMES)
    def test_first_class_apps(self, name):
        app = get_app(name, ADVERSARIAL_TEST_SCALE)
        assert app.spec.name == name
        assert name not in APP_NAMES
        trace = app.trace(100, seed=5)
        assert trace.metadata["app"] == name
        assert len(trace.block_ids) == 100

    @settings(max_examples=10, deadline=None)
    @given(case=adversarial_workloads())
    def test_strategy_traces_stay_in_program(self, case):
        """The shared conftest strategy only ever emits valid input:
        every block id resolves, and the trace self-describes."""
        name, app, trace = case
        valid = set(app.program.block_ids())
        assert set(trace.block_ids) <= valid
        assert trace.metadata["app"] == name


class TestHashAlias:
    """The 16-bit context hash saturates by construction."""

    def test_collapses_to_alias_bits(self):
        app = adversarial_app("hash-alias")
        positions = _positions(app.program)
        assert positions == {3, 11}
        assert len(positions) <= ALIAS_BITS

    def test_collision_rate_exceeds_threshold(self):
        """At 16 hash bits nearly every block collides with another:
        n blocks share ALIAS_BITS positions, so the collision rate is
        1 - distinct/n — far beyond anything a benign layout hits."""
        app = adversarial_app("hash-alias")
        n_blocks = len(app.program)
        rate = 1.0 - len(_positions(app.program)) / n_blocks
        assert rate >= 0.9

    def test_paper_apps_do_not_collide_like_this(self, small_app):
        """Contrast: a paper app's layout spreads across many more
        positions than the adversarial collapse."""
        assert len(_positions(small_app.program)) > 4 * ALIAS_BITS

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_every_context_mask_is_degenerate(self, data):
        """Any context over hash-alias blocks hashes into the two
        alias bits — distinct contexts are indistinguishable to the
        conditional subset test."""
        app = adversarial_app("hash-alias")
        ids = sorted(app.program.block_ids())
        ctx = data.draw(
            st.lists(st.sampled_from(ids), min_size=1, max_size=6),
            label="context",
        )
        mask = context_mask(
            [app.program.block(b).address for b in ctx], HASH_BITS
        )
        allowed = (1 << 3) | (1 << 11)
        assert mask != 0
        assert mask & ~allowed == 0

    @settings(max_examples=10, deadline=None)
    @given(
        count=st.integers(1, 40),
        bit=st.integers(0, HASH_BITS - 1),
    )
    def test_mining_is_sound_and_deterministic(self, count, bit):
        mined = mine_aliased_addresses(count, allowed_bits=(bit,))
        assert mined == mine_aliased_addresses(count, allowed_bits=(bit,))
        assert len(mined) == count
        for address in mined:
            assert context_bit_positions(address, HASH_BITS)[0] == bit


class TestBloomStorm:
    """Every block hits one Bloom counter; deep LBRs overflow it."""

    def test_single_bit_saturation(self):
        app = adversarial_app("bloom-storm")
        assert _positions(app.program) == {BLOOM_STORM_BIT}

    def test_default_depth_is_safe(self):
        """The stock 32-deep LBR peaks below the 6-bit counter max, so
        the columnar plan backend serves the replay normally."""
        app = adversarial_app("bloom-storm")
        trace = app.trace(400, seed=1)
        with kernel.force_numpy_kernel():
            core = CoreSimulator(app.program, plan=_conditional_plan(app.program))
            stats = core.run(trace)
        assert core.last_replay_backend == "columnar-plan"
        assert stats.l1i_misses > 0

    @settings(max_examples=6, deadline=None)
    @given(depth=st.integers(64, 256), seed=st.integers(0, 2**10))
    def test_deep_lbr_overflows_reference(self, depth, seed):
        """Any LBR deeper than the counter width overflows on this
        workload — deterministically, whatever the walk seed."""
        app = adversarial_app("bloom-storm")
        trace = app.trace(400, seed=seed)
        core = CoreSimulator(
            app.program, plan=_conditional_plan(app.program),
            lbr_depth=depth,
        )
        with kernel.reference_path():
            with pytest.raises(OverflowError, match="runtime-hash"):
                core.run(trace)

    def test_columnar_bailout_reproduces_the_overflow(self):
        """The sequential columnar path pre-detects the overflow,
        falls back to the reference loop, and surfaces the same
        error the hardware model defines."""
        app = adversarial_app("bloom-storm")
        trace = app.trace(400, seed=1)
        core = CoreSimulator(
            app.program, plan=_conditional_plan(app.program), lbr_depth=128
        )
        with kernel.force_numpy_kernel():
            with pytest.raises(OverflowError, match="runtime-hash"):
                core.run(trace)

    def test_batch_fails_the_slot_with_a_reason(self):
        """The plan-batched executor must not poison the batch: the
        overflowing slot bounces with ``bloom-overflow`` and untouched
        stats while healthy slots still batch."""
        app = adversarial_app("bloom-storm")
        trace = app.trace(400, seed=1)
        plan = _conditional_plan(app.program)
        deep = CoreSimulator(app.program, plan=plan, lbr_depth=128)
        safe = CoreSimulator(app.program, plan=plan, lbr_depth=32)
        with kernel.force_numpy_kernel():
            reasons = run_plan_batch([deep, safe], trace)
        assert reasons == ["bloom-overflow", None]
        assert deep.stats == SimStats()
        assert safe.last_replay_backend == "columnar-plan-batch"
        assert safe.stats.program_instructions > 0


class TestPhaseChain:
    """Default traces rotate their footprint through phases."""

    def test_builds_as_phased_app(self):
        app = adversarial_app("phase-chain")
        assert isinstance(app, PhasedApp)
        assert app.phases == PHASE_COUNT

    @settings(max_examples=15, deadline=None)
    @given(
        phase=st.integers(0, 12),
        request_types=st.integers(2, 8),
    )
    def test_phase_mix_is_a_distribution(self, phase, request_types):
        mix = phase_mix(phase, request_types)
        assert len(mix) == request_types
        assert abs(sum(mix) - 1.0) < 1e-9
        assert max(mix) == mix[phase % request_types]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_segments_are_exact_phase_mix_walks(self, seed):
        """The phase machinery, pinned exactly: segment *p* of a
        default trace IS the walk the underlying model generates under
        ``phase_mix(p)`` with the derived per-phase seed.  (Whether a
        given walk seed makes the footprints *look* different is
        statistical — few requests land in a short segment — so the
        emergent-footprint claim is asserted on the app's own default
        seed below, not over arbitrary seeds.)"""
        app = adversarial_app("phase-chain")
        length = 2400
        segment = length // PHASE_COUNT
        trace = app.trace(length, seed=seed)
        assert trace.metadata["phases"] == PHASE_COUNT
        for phase in range(PHASE_COUNT):
            model = app.model.with_branch_probs(
                {app.dispatch_block: phase_mix(phase, app.spec.request_types)}
            )
            assert trace.block_ids[
                phase * segment:(phase + 1) * segment
            ] == model.generate(segment, seed + phase), f"phase {phase}"

    def test_default_trace_shifts_footprint(self):
        """On the app's own default walk seed, the phase rotation
        visibly moves the instruction footprint: at least one phase
        pair shares almost nothing, so a plan trained on one phase
        goes stale on another."""
        app = adversarial_app("phase-chain")
        length = 2400
        trace = app.trace(length)
        segment = length // PHASE_COUNT
        sets = [
            set(trace.block_ids[i * segment:(i + 1) * segment])
            for i in range(PHASE_COUNT)
        ]
        overlaps = [
            len(a & b) / len(a | b)
            for i, a in enumerate(sets)
            for b in sets[i + 1:]
        ]
        assert min(overlaps) < 0.5
        assert max(overlaps) < 1.0

    def test_deterministic_per_seed(self):
        app = adversarial_app("phase-chain")
        assert app.trace(600, seed=9).block_ids == (
            app.trace(600, seed=9).block_ids
        )
        assert app.trace(600, seed=9).block_ids != (
            app.trace(600, seed=10).block_ids
        )

    def test_explicit_mix_restores_single_phase_traces(self):
        """The Fig. 16 input machinery still works: an explicit mix
        bypasses the phase rotation entirely."""
        app = adversarial_app("phase-chain")
        n = app.spec.request_types
        mix = tuple(1.0 / n for _ in range(n))
        trace = app.trace(600, seed=3, mix=mix)
        assert "phases" not in trace.metadata
        assert trace.metadata["mix"] == mix
