"""Unit tests for external trace ingestion.

Format decoding (ChampSim binary, JSONL, CSV, compression), the
leader-based basic-block reconstruction, the synthesized layout view,
and the on-disk round trip through the shard directory + program
sidecar.  The replay-facing guarantees (bit-identity across backends)
live in ``tests/sim/test_ingest_differential.py``.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.sim.trace import (
    BlockTrace,
    ShardedTrace,
    program_from_payload,
    program_payload,
)
from repro.workloads import ingest as ing

from ..conftest import make_program


def _records(ips, sizes=None, taken=None):
    sizes = sizes or [0] * len(ips)
    taken = taken or [False] * len(ips)
    return list(zip(ips, sizes, taken))


class TestReaders:
    def test_champsim_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        records = [(0x1000, False, False), (0x1004, True, True),
                   (0x2000, False, False)]
        with open(path, "wb") as handle:
            for ip, br, tk in records:
                handle.write(ing.champsim_record(ip, br, tk))
        decoded = list(ing.iter_champsim(path))
        assert decoded == [(0x1000, 0, False), (0x1004, 0, True),
                           (0x2000, 0, False)]

    def test_champsim_record_is_64_bytes(self):
        assert len(ing.champsim_record(0xDEAD)) == ing.CHAMPSIM_RECORD_BYTES

    def test_champsim_truncated_record_raises(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(ing.champsim_record(0x1000) + b"\x01\x02")
        with pytest.raises(ValueError, match="truncated"):
            list(ing.iter_champsim(path))

    @pytest.mark.parametrize("compress", ("gz", "xz"))
    def test_compressed_by_magic_not_extension(self, tmp_path, compress):
        # deliberately misleading extension: detection is by magic bytes
        path = tmp_path / "t.trace"
        ing.write_champsim_fixture(
            path, make_program([64, 64]), BlockTrace([0, 1, 0]),
            compress=compress,
        )
        assert len(list(ing.iter_champsim(path))) > 0

    def test_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"ip": "0x1000", "size": 4}\n'
            "\n"
            '{"ip": 4100, "taken": true}\n'
        )
        assert list(ing.iter_jsonl(path)) == [
            (0x1000, 4, False), (4100, 0, True)
        ]

    def test_jsonl_bad_record_names_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ip": 1}\n{"pc": 2}\n')
        with pytest.raises(ValueError, match=":2:"):
            list(ing.iter_jsonl(path))

    def test_csv_with_header_and_hex(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ip,size,taken\n0x1000,4,0\n4100,,true\n4104\n")
        assert list(ing.iter_csv(path)) == [
            (0x1000, 4, False), (4100, 0, True), (4104, 0, False)
        ]

    def test_negative_ip_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("-5\n")
        with pytest.raises(ValueError, match="bad ip"):
            list(ing.iter_csv(path))

    def test_gzipped_text_format(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write('{"ip": 64}\n{"ip": 68}\n')
        assert [r[0] for r in ing.iter_jsonl(path)] == [64, 68]

    def test_detect_format(self):
        assert ing.detect_format("a/b/x.jsonl") == "jsonl"
        assert ing.detect_format("x.ndjson.gz") == "jsonl"
        assert ing.detect_format("x.csv.xz") == "csv"
        assert ing.detect_format("x.champsim.trace.gz") == "champsim"
        assert ing.detect_format("mystery.bin") == "champsim"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            ing.read_records(tmp_path / "x", fmt="elf")


class TestReconstruction:
    def test_straight_line_becomes_one_block(self):
        # 0x1000..0x100c, 4-byte fall-throughs: a single 4-insn block
        work = ing.ingest_records(
            _records([0x1000, 0x1004, 0x1008, 0x100C] * 3)
        )
        assert len(work.program) == 1
        block = work.program.block(0)
        assert block.address == 0x1000
        assert block.instruction_count == 4
        assert block.size_bytes == 16
        assert work.trace.block_ids == [0, 0, 0]

    def test_jump_target_splits_block(self):
        # second iteration enters at 0x1008: 0x1008 becomes a leader,
        # so the straight line splits into two blocks
        ips = [0x1000, 0x1004, 0x1008, 0x100C, 0x1008, 0x100C]
        work = ing.ingest_records(_records(ips))
        assert len(work.program) == 2
        assert [b.address for b in work.program] == [0x1000, 0x1008]
        assert work.trace.block_ids == [0, 1, 1]

    def test_taken_branch_fallthrough_splits(self):
        # a taken branch to the sequential next ip still ends a block
        ips = [0x1000, 0x1004, 0x1008]
        taken = [False, True, False]
        work = ing.ingest_records(_records(ips, taken=taken))
        assert [b.address for b in work.program] == [0x1000, 0x1008]
        assert work.trace.block_ids == [0, 1]

    def test_size_inference_from_fallthrough(self):
        # 0x1000 -> 0x1002 -> 0x1008: both gaps are believable x86
        # instruction sizes, so all three ips fall through into one
        # block of 2 + 6 + DEFAULT bytes
        work = ing.ingest_records(_records([0x1000, 0x1002, 0x1008]))
        assert len(work.program) == 1
        block = work.program.block(0)
        assert block.address == 0x1000
        assert block.instruction_count == 3
        assert block.size_bytes == 2 + 6 + ing.DEFAULT_INSTRUCTION_BYTES

    def test_wide_gap_is_a_discontinuity(self):
        # a forward gap beyond MAX_INSTRUCTION_BYTES cannot be a
        # fall-through: the far ip starts its own block
        far = 0x1000 + ing.MAX_INSTRUCTION_BYTES + 4
        work = ing.ingest_records(_records([0x1000, far]))
        assert [b.address for b in work.program] == [0x1000, far]

    def test_explicit_sizes_win(self):
        work = ing.ingest_records(
            _records([0x1000, 0x1008], sizes=[8, 6])
        )
        assert work.program.block(0).size_bytes == 8 + 6

    def test_no_overlap_even_with_lying_sizes(self):
        # declared size overlaps the next observed ip; the clamp must
        # keep the Program constructor's validation happy
        work = ing.ingest_records(
            _records([0x1000, 0x1002], sizes=[16, 4])
        )
        blocks = sorted(work.program, key=lambda b: b.address)
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.address + prev.size_bytes <= cur.address

    def test_region_view(self):
        # two ips a region gap apart land in different function ids
        far = 0x1000 + ing.REGION_GAP_BYTES + 64
        work = ing.ingest_records(
            _records([0x1000, far, 0x1000, far])
        )
        fids = {b.address: b.function_id for b in work.program}
        assert fids[0x1000] != fids[far]
        assert work.report["regions"] == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ing.ingest_records([])

    def test_report_counts(self):
        work = ing.ingest_records(
            _records([0x1000, 0x1004, 0x2000, 0x1000, 0x1004, 0x2000]),
            name="counted", fmt="jsonl", source="mem",
        )
        assert work.report["records"] == 6
        assert work.report["instructions"] == 6
        assert work.report["blocks"] == len(work.program)
        assert work.report["format"] == "jsonl"
        assert work.trace.metadata["app"] == "counted"
        assert work.trace.metadata["source"] == "mem"


class TestExpansion:
    def test_expand_then_ingest_reproduces_footprint(self, ingested_fixture):
        """The fixture pipeline: expanded instruction records ingest
        back to a program covering the same dynamic byte footprint."""
        workload, _ = ingested_fixture
        assert len(workload.program) == workload.report["blocks"]
        assert workload.report["strays"] == 0
        # every reconstructed block is genuinely replayed
        assert set(workload.trace.block_ids) == set(
            workload.program.block_ids()
        )

    def test_expansion_instruction_count_matches(self):
        program = make_program([64, 32, 16])
        trace = BlockTrace([0, 2, 1])
        records = list(ing.expand_block_trace(program, trace))
        assert len(records) == trace.instruction_count(program)


class TestPersistence:
    def test_round_trip(self, tmp_path, ingested_fixture):
        workload, _ = ingested_fixture
        sharded = ing.write_ingested(workload, tmp_path / "d", 512)
        program, reread = ing.load_ingested(tmp_path / "d")
        assert reread.materialize().block_ids == workload.trace.block_ids
        assert program_payload(program) == program_payload(workload.program)
        assert isinstance(reread, ShardedTrace)
        assert sharded.num_shards == reread.num_shards > 1

    def test_program_payload_round_trip(self):
        program = make_program([64, 48, 32], base_address=0x7000)
        clone = program_from_payload(program_payload(program))
        assert program_payload(clone) == program_payload(program)

    def test_program_payload_rejects_bad_format(self):
        with pytest.raises(ValueError, match="payload"):
            program_from_payload({"format": "elf", "blocks": []})

    def test_sidecar_carries_report(self, tmp_path, ingested_fixture):
        workload, _ = ingested_fixture
        ing.write_ingested(workload, tmp_path / "d", 512)
        with open(tmp_path / "d" / ing.PROGRAM_FILE) as handle:
            payload = json.load(handle)
        assert payload["report"]["records"] == workload.report["records"]

    def test_load_missing_sidecar_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ing.load_ingested(tmp_path)


class TestCLI:
    def test_ingest_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads.apps import build_app

        app = build_app("finagle-chirper", scale=0.12)
        trace = app.trace(1_500, seed=11)
        fixture = tmp_path / "t.jsonl"
        with open(fixture, "w") as handle:
            for ip, size, taken in ing.expand_block_trace(
                app.program, trace
            ):
                handle.write(json.dumps(
                    {"ip": ip, "taken": taken}
                ) + "\n")
        out = tmp_path / "shards"
        rc = main([
            "ingest", str(fixture), "-o", str(out),
            "--shard-insns", "1000", "--replay", "--name", "demo",
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "[jsonl]" in captured
        assert "replay [" in captured
        program, sharded = ing.load_ingested(out)
        assert program.name == "demo"
        assert sharded.num_shards >= 2
        with open(out / ing.REPORT_FILE) as handle:
            report = json.load(handle)
        assert report["replay"]["l1i_mpki"] > 0
