"""Control-flow model and trace-walk tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.cfgmodel import (
    Branch,
    Call,
    ControlFlowModel,
    Jump,
    Return,
    TypedBranch,
)


def linear_model():
    """0 -> 1 -> 2 -> (return to entry)."""
    return ControlFlowModel(
        {0: Jump(1), 1: Jump(2), 2: Return()}, entry=0
    )


class TestTerminatorValidation:
    def test_branch_needs_matching_lengths(self):
        with pytest.raises(ValueError):
            Branch((1, 2), (0.5,))

    def test_branch_rejects_negative_probs(self):
        with pytest.raises(ValueError):
            Branch((1, 2), (-0.1, 1.1))

    def test_branch_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            Branch((1,), (0.0,))

    def test_typed_branch_needs_targets(self):
        with pytest.raises(ValueError):
            TypedBranch(())


class TestModelValidation:
    def test_entry_must_exist(self):
        with pytest.raises(ValueError):
            ControlFlowModel({0: Return()}, entry=5)

    def test_targets_must_exist(self):
        with pytest.raises(ValueError):
            ControlFlowModel({0: Jump(99)}, entry=0)

    def test_call_targets_must_exist(self):
        with pytest.raises(ValueError):
            ControlFlowModel({0: Call(99, 0)}, entry=0)

    def test_static_successors(self):
        model = ControlFlowModel(
            {0: Branch((1, 2), (0.5, 0.5)), 1: Jump(0), 2: Return()},
            entry=0,
        )
        assert model.static_successors(0) == (1, 2)
        assert model.static_successors(1) == (0,)
        assert model.static_successors(2) == ()


class TestWalks:
    def test_linear_walk_wraps_at_return(self):
        trace = linear_model().generate(7, seed=1)
        assert trace == [0, 1, 2, 0, 1, 2, 0]

    def test_call_and_return(self):
        model = ControlFlowModel(
            {
                0: Call(10, 1),   # call function at 10, resume at 1
                1: Return(),
                10: Jump(11),
                11: Return(),
            },
            entry=0,
        )
        trace = model.generate(5, seed=1)
        assert trace == [0, 10, 11, 1, 0]

    def test_deterministic_by_seed(self):
        model = ControlFlowModel(
            {0: Branch((0, 1), (0.5, 0.5)), 1: Jump(0)}, entry=0
        )
        assert model.generate(50, seed=9) == model.generate(50, seed=9)
        assert model.generate(200, seed=9) != model.generate(200, seed=10)

    def test_branch_respects_probabilities(self):
        model = ControlFlowModel(
            {0: Branch((1, 2), (0.9, 0.1)), 1: Jump(0), 2: Jump(0)},
            entry=0,
        )
        trace = model.generate(10_000, seed=4)
        ones = trace.count(1)
        twos = trace.count(2)
        assert ones > 6 * twos

    def test_length_exact(self):
        assert len(linear_model().generate(123, seed=0)) == 123

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            linear_model().generate(0, seed=1)

    def test_stack_depth_guard(self):
        # infinite recursion: 0 calls itself; guard must not blow up
        model = ControlFlowModel({0: Call(0, 0)}, entry=0)
        trace = model.generate(100, seed=1, max_stack_depth=8)
        assert len(trace) == 100


class TestTypedBranch:
    def make_typed_model(self):
        # dispatch 0 picks stub 1 (type 0) or 2 (type 1); both call 10;
        # 10's typed branch selects arm 11 (type 0) or 12 (type 1).
        terms = {
            0: Branch((1, 2), (0.5, 0.5)),
            1: Call(10, 0),
            2: Call(10, 0),
            10: TypedBranch((11, 12)),
            11: Return(),
            12: Return(),
        }
        return ControlFlowModel(
            terms, entry=0, type_markers={1: 0, 2: 1}
        )

    def test_arm_follows_active_type(self):
        model = self.make_typed_model()
        trace = model.generate(400, seed=3)
        for position, block in enumerate(trace[:-2]):
            if block == 1:
                assert trace[position + 2] == 11
            if block == 2:
                assert trace[position + 2] == 12

    def test_both_arms_reached(self):
        trace = self.make_typed_model().generate(400, seed=3)
        assert 11 in trace and 12 in trace


class TestInputOverrides:
    def test_with_branch_probs(self):
        model = ControlFlowModel(
            {0: Branch((1, 2), (0.5, 0.5)), 1: Jump(0), 2: Jump(0)},
            entry=0,
        )
        skewed = model.with_branch_probs({0: (1.0, 0.0)})
        trace = skewed.generate(100, seed=1)
        assert 2 not in trace
        # original untouched
        assert 2 in model.generate(100, seed=1)

    def test_override_non_branch_rejected(self):
        model = linear_model()
        with pytest.raises(ValueError):
            model.with_branch_probs({0: (1.0,)})

    def test_override_preserves_type_markers(self):
        model = ControlFlowModel(
            {0: Branch((1,), (1.0,)), 1: Return()},
            entry=0,
            type_markers={1: 3},
        )
        assert model.with_branch_probs({0: (1.0,)}).type_markers == {1: 3}


class TestWalkProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_every_emitted_block_is_known(self, seed):
        model = ControlFlowModel(
            {
                0: Branch((1, 2), (0.6, 0.4)),
                1: Call(3, 0),
                2: Jump(0),
                3: Return(),
            },
            entry=0,
        )
        trace = model.generate(200, seed=seed)
        assert set(trace) <= {0, 1, 2, 3}
        # transitions respect static successors (calls/returns aside)
        for src, dst in zip(trace, trace[1:]):
            successors = model.static_successors(src)
            if successors:
                assert dst in successors or dst == 0  # return target
