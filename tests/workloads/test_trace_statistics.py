"""Statistical properties of generated traces.

The workload generator's whole purpose is to produce executions with
specific aggregate behaviours; these tests measure those behaviours
on real (small) applications rather than trusting the construction.
"""

import collections

import pytest

from repro.workloads.apps import build_app
from repro.workloads.inputs import input_mixes


@pytest.fixture(scope="module")
def app():
    return build_app("kafka", scale=0.5)


@pytest.fixture(scope="module")
def trace(app):
    return app.trace(60_000)


class TestRequestStructure:
    def test_dispatch_frequency_matches_mix(self, app, trace):
        """Each handler's stub executes in proportion to the mix."""
        term = app.model.terminator(app.dispatch_block)
        stub_counts = collections.Counter(
            b for b in trace.block_ids if b in set(term.targets)
        )
        total = sum(stub_counts.values())
        assert total > 100  # enough requests to compare against
        for stub, probability in zip(term.targets, term.probs):
            observed = stub_counts.get(stub, 0) / total
            assert abs(observed - probability) < 0.08

    def test_every_request_returns_to_dispatcher(self, app, trace):
        dispatch_count = trace.block_ids.count(app.dispatch_block)
        term = app.model.terminator(app.dispatch_block)
        stub_total = sum(
            trace.block_ids.count(stub) for stub in term.targets
        )
        # each dispatch executes exactly one stub (last one may be cut)
        assert abs(dispatch_count - stub_total) <= 1

    def test_trace_covers_many_functions(self, app, trace):
        by_function = {
            block.block_id: block.function_id for block in app.program
        }
        touched = {by_function[b] for b in set(trace.block_ids)}
        assert len(touched) > 30


class TestFootprintBehaviour:
    def test_dynamic_footprint_exceeds_l1i(self, app, trace):
        lines = set()
        for block_id in set(trace.block_ids):
            lines.update(app.program.lines_of(block_id))
        assert len(lines) > 512  # 32 KiB / 64 B

    def test_hot_cold_skew(self, trace):
        """Execution counts are heavily skewed: the top decile of
        blocks accounts for the majority of executions."""
        counts = sorted(
            collections.Counter(trace.block_ids).values(), reverse=True
        )
        top_decile = sum(counts[: max(1, len(counts) // 10)])
        assert top_decile > 0.4 * len(trace)


class TestInputMixEffects:
    def test_mix_shift_changes_block_distribution(self, app):
        mixes = input_mixes(app)
        traces = {
            name: app.trace(15_000, seed=1234, mix=mix)
            for name, mix in mixes.items()
            if name in ("default", "input-3")
        }
        default_hot = set(
            b
            for b, c in collections.Counter(
                traces["default"].block_ids
            ).most_common(300)
        )
        rotated_hot = set(
            b
            for b, c in collections.Counter(
                traces["input-3"].block_ids
            ).most_common(300)
        )
        overlap = len(default_hot & rotated_hot) / 300
        assert overlap < 0.95  # the hot set genuinely moves

    def test_same_mix_different_seed_same_distribution(self, app):
        a = collections.Counter(app.trace(15_000, seed=1).block_ids)
        b = collections.Counter(app.trace(15_000, seed=2).block_ids)
        hot_a = {blk for blk, _ in a.most_common(100)}
        hot_b = {blk for blk, _ in b.most_common(100)}
        assert len(hot_a & hot_b) / 100 > 0.6  # same program behaviour
