"""End-to-end I-SPY pipeline tests on a real (small) application."""

import pytest

from repro.core.config import DEFAULT_CONFIG, ISpyConfig
from repro.core.ispy import ISpy, build_ispy_plan
from repro.sim.cpu import simulate


@pytest.fixture(scope="module")
def ispy_result(small_app_module, small_profile_module):
    return build_ispy_plan(small_app_module.program, small_profile_module)


@pytest.fixture(scope="module")
def small_app_module(request):
    return request.getfixturevalue("small_app")


@pytest.fixture(scope="module")
def small_profile_module(request):
    return request.getfixturevalue("small_profile")


class TestPlanConstruction:
    def test_plan_not_empty(self, ispy_result):
        assert len(ispy_result.plan) > 10

    def test_covers_most_hot_lines(self, ispy_result):
        assert ispy_result.report.coverage > 0.9

    def test_kind_mix_includes_conditionals_and_coalesced(self, ispy_result):
        counts = ispy_result.plan.kind_counts()
        assert counts.get("Cprefetch", 0) + counts.get("CLprefetch", 0) > 0
        assert counts.get("Lprefetch", 0) + counts.get("CLprefetch", 0) > 0

    def test_contexts_recorded(self, ispy_result):
        assert ispy_result.report.contexts
        for context in ispy_result.report.contexts.values():
            assert context.probability >= DEFAULT_CONFIG.min_context_probability
            assert context.support >= DEFAULT_CONFIG.min_context_support

    def test_sites_exist_in_program(self, ispy_result, small_app_module):
        for instr in ispy_result.plan:
            assert instr.site_block in small_app_module.program

    def test_static_bytes_positive(self, ispy_result, small_app_module):
        text = small_app_module.program.text_bytes
        assert 0 < ispy_result.plan.static_increase(text) < 0.2


class TestAblationFlags:
    def test_conditional_only_has_no_coalesced(self, small_app_module, small_profile_module):
        config = DEFAULT_CONFIG.conditional_only()
        result = ISpy(config).build_plan(
            small_app_module.program, small_profile_module
        )
        assert all(not instr.is_coalesced for instr in result.plan)

    def test_coalescing_only_has_no_conditionals(self, small_app_module, small_profile_module):
        config = DEFAULT_CONFIG.coalescing_only()
        result = ISpy(config).build_plan(
            small_app_module.program, small_profile_module
        )
        assert all(not instr.is_conditional for instr in result.plan)

    def test_coalescing_reduces_instruction_count(self, small_app_module, small_profile_module):
        with_coalescing = build_ispy_plan(
            small_app_module.program, small_profile_module
        )
        without = ISpy(DEFAULT_CONFIG.conditional_only()).build_plan(
            small_app_module.program, small_profile_module
        )
        assert len(with_coalescing.plan) <= len(without.plan)


class TestEndToEndSpeedup:
    def test_ispy_speeds_up_evaluation_trace(
        self, ispy_result, small_app_module, small_eval_trace
    ):
        app = small_app_module
        base = simulate(
            app.program,
            small_eval_trace,
            warmup=4000,
            data_traffic=app.data_traffic(seed=1),
        )
        ispy = simulate(
            app.program,
            small_eval_trace,
            plan=ispy_result.plan,
            warmup=4000,
            data_traffic=app.data_traffic(seed=1),
        )
        assert ispy.cycles < base.cycles
        assert ispy.l1i_mpki < base.l1i_mpki * 0.5

    def test_deterministic_plan(self, small_app_module, small_profile_module):
        plan_a = build_ispy_plan(small_app_module.program, small_profile_module)
        plan_b = build_ispy_plan(small_app_module.program, small_profile_module)
        instrs_a = sorted(
            (i.site_block, i.base_line, i.bit_vector, i.context_mask or 0)
            for i in plan_a.plan
        )
        instrs_b = sorted(
            (i.site_block, i.base_line, i.bit_vector, i.context_mask or 0)
            for i in plan_b.plan
        )
        assert instrs_a == instrs_b
