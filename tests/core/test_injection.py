"""Injection-site selection and prefetch-window tests."""

from collections import Counter

import pytest

from repro.cfg.fanout import sites_in_window
from repro.core.config import ISpyConfig
from repro.core.injection import frequent_miss_lines, rank_candidates, select_site
from repro.profiling.pebs import MissSample
from repro.profiling.profiler import ExecutionProfile

MISS_BLOCK = 90
MISS_LINE = 999


def build_profile(block_ids, cycles_per_block=4.0, instr_per_block=4):
    block_cycles = [i * cycles_per_block for i in range(len(block_ids))]
    samples = [
        MissSample(i, MISS_BLOCK, MISS_LINE, block_cycles[i])
        for i, b in enumerate(block_ids)
        if b == MISS_BLOCK
    ]
    cumulative = [i * instr_per_block for i in range(len(block_ids))]
    return ExecutionProfile(
        program_name="synthetic",
        block_ids=block_ids,
        block_cycles=block_cycles,
        miss_samples=samples,
        edge_counts=Counter(zip(block_ids, block_ids[1:])),
        block_counts=Counter(block_ids),
        cumulative_instructions=cumulative,
    )


def window_config(minimum=4.0, maximum=40.0, **overrides):
    return ISpyConfig(
        min_prefetch_distance=minimum,
        max_prefetch_distance=maximum,
        **overrides,
    )


class TestSitesInWindow:
    def test_window_bounds(self):
        # blocks at 4-cycle spacing; miss at index 20
        profile = build_profile(list(range(30)))
        sites = sites_in_window(profile, 20, 8.0, 20.0)
        blocks = [b for b, _ in sites]
        assert blocks == [18, 17, 16, 15]  # distances 8,12,16,20

    def test_distances_reported(self):
        profile = build_profile(list(range(30)))
        sites = dict(sites_in_window(profile, 20, 8.0, 20.0))
        assert sites[18] == pytest.approx(8.0)
        assert sites[15] == pytest.approx(20.0)

    def test_duplicate_blocks_collapsed(self):
        profile = build_profile([1, 2, 1, 2, 1, 2, 9])
        sites = sites_in_window(profile, 6, 0.0, 100.0)
        blocks = [b for b, _ in sites]
        assert sorted(blocks) == [1, 2]

    def test_ipc_estimator_uses_instruction_counts(self):
        profile = build_profile(list(range(30)))
        exact = sites_in_window(profile, 20, 8.0, 20.0, estimator="cycles")
        estimated = sites_in_window(profile, 20, 8.0, 20.0, estimator="ipc")
        # uniform blocks: the two estimators agree here
        assert [b for b, _ in exact] == [b for b, _ in estimated]

    def test_rejects_unknown_estimator(self):
        profile = build_profile(list(range(10)))
        with pytest.raises(ValueError):
            sites_in_window(profile, 5, 0, 10, estimator="magic")


def repeating_units(count=30):
    """Each unit: [5, 6, 7, 8, MISS]; site candidates 5..8."""
    units = []
    for _ in range(count):
        units.extend([5, 6, 7, 8, MISS_BLOCK])
    return units


class TestRankCandidates:
    def test_candidates_cover_all_misses(self):
        profile = build_profile(repeating_units())
        config = window_config(4.0, 16.0)
        candidates = rank_candidates(profile, MISS_LINE, config)
        assert candidates
        assert all(c.coverage > 0.9 for c in candidates)

    def test_low_fanout_when_always_leads_to_miss(self):
        profile = build_profile(repeating_units())
        config = window_config(4.0, 16.0)
        candidates = rank_candidates(profile, MISS_LINE, config)
        assert all(c.fanout < 0.1 for c in candidates)

    def test_no_samples_no_candidates(self):
        profile = build_profile([1, 2, 3] * 10)
        config = window_config()
        assert rank_candidates(profile, MISS_LINE, config) == []


class TestSelectSite:
    def test_prefers_earliest_near_best(self):
        profile = build_profile(repeating_units())
        config = window_config(4.0, 16.0)
        selection = select_site(profile, MISS_LINE, config)
        assert selection.chosen is not None
        # all candidates have ~equal coverage; the farthest (block 5,
        # 16 cycles out) should win the timeliness tie-break
        assert selection.chosen.block_id == 5

    def test_fanout_threshold_filters(self):
        # site 5 executes twice per unit but only one leads to a miss
        units = []
        for _ in range(30):
            units.extend([5, 6, MISS_BLOCK, 5, 6, 3])
        profile = build_profile(units)
        config = window_config(4.0, 10.0)
        unrestricted = select_site(profile, MISS_LINE, config)
        assert unrestricted.chosen is not None
        restricted = select_site(profile, MISS_LINE, config, max_fanout=0.1)
        assert restricted.chosen is None

    def test_miss_block_recorded(self):
        profile = build_profile(repeating_units())
        selection = select_site(profile, MISS_LINE, window_config(4.0, 16.0))
        assert selection.miss_block == MISS_BLOCK
        assert selection.sample_count == 30

    def test_rejects_unknown_fanout_mode(self):
        profile = build_profile(repeating_units())
        with pytest.raises(ValueError):
            select_site(
                profile, MISS_LINE, window_config(), fanout_mode="static"
            )


class TestFrequentMissLines:
    def test_threshold_applied(self):
        profile = build_profile(repeating_units(count=2))
        config = window_config(min_miss_samples=3)
        assert frequent_miss_lines(profile, config) == []
        config2 = window_config(min_miss_samples=2)
        assert frequent_miss_lines(profile, config2) == [(MISS_LINE, 2)]

    def test_sorted_by_count(self):
        block_ids = repeating_units(10)
        profile = build_profile(block_ids)
        # add a second, rarer miss line by hand
        profile.miss_samples.append(MissSample(0, 5, 555, 0.0))
        profile.miss_samples.append(MissSample(5, 5, 555, 20.0))
        profile.miss_samples.append(MissSample(9, 5, 555, 36.0))
        profile._line_samples = None  # invalidate cache
        lines = frequent_miss_lines(profile, window_config(min_miss_samples=3))
        assert lines[0][0] == MISS_LINE
        assert lines[1][0] == 555
