"""Distance-estimator divergence tests (I-SPY cycles vs AsmDB IPC).

The paper's Section IV point: AsmDB converts instruction counts into
cycles with a whole-program average IPC, which mis-sizes the prefetch
window wherever local IPC diverges from the average.  These tests
build profiles with deliberately non-uniform timing and show the two
estimators disagree exactly there.
"""

from collections import Counter

from repro.cfg.fanout import sites_in_window
from repro.profiling.pebs import MissSample
from repro.profiling.profiler import ExecutionProfile


def make_profile(block_cycles, instr_per_block=4):
    """A linear trace 0..N-1 with explicit per-index start cycles."""
    n = len(block_cycles)
    block_ids = list(range(n))
    samples = [MissSample(n - 1, n - 1, 999, block_cycles[-1])]
    return ExecutionProfile(
        program_name="synthetic",
        block_ids=block_ids,
        block_cycles=list(block_cycles),
        miss_samples=samples,
        edge_counts=Counter(zip(block_ids, block_ids[1:])),
        block_counts=Counter(block_ids),
        cumulative_instructions=[i * instr_per_block for i in range(n)],
    )


class TestEstimatorDivergence:
    def test_stall_cluster_shifts_ipc_window(self):
        """Blocks 0..9 run fast (2 cy each); block 10 stalls 200
        cycles; blocks 11..19 run fast again, then the miss.

        In real cycles, the fast blocks after the stall are within a
        tight window of the miss.  The IPC estimator spreads the
        stall evenly over all instructions, so it believes those same
        blocks are much *farther* away than they are.
        """
        cycles = []
        now = 0.0
        for index in range(20):
            cycles.append(now)
            now += 200.0 if index == 10 else 2.0
        profile = make_profile(cycles)
        miss_index = 19

        exact = dict(
            sites_in_window(profile, miss_index, 0.0, 30.0, estimator="cycles")
        )
        estimated = dict(
            sites_in_window(profile, miss_index, 0.0, 30.0, estimator="ipc")
        )
        # exact: blocks 11..18 are within 16 cycles of the miss
        assert 12 in exact
        # average CPI here is ~(236/76) ≈ 3.1 cycles/instr, so the
        # IPC estimate holds ~2 blocks in a 30-cycle window
        assert len(estimated) < len(exact)

    def test_uniform_timing_estimators_agree(self):
        cycles = [2.0 * i for i in range(30)]
        profile = make_profile(cycles)
        exact = sites_in_window(profile, 29, 4.0, 20.0, estimator="cycles")
        estimated = sites_in_window(profile, 29, 4.0, 20.0, estimator="ipc")
        assert [b for b, _ in exact] == [b for b, _ in estimated]

    def test_average_cpi_without_baseline_stats(self):
        cycles = [3.0 * i for i in range(10)]
        profile = make_profile(cycles, instr_per_block=4)
        # 27 cycles over 36 instructions
        assert abs(profile.average_cpi - 27.0 / 36.0) < 1e-9

    def test_estimated_distance_formula(self):
        cycles = [3.0 * i for i in range(10)]
        profile = make_profile(cycles, instr_per_block=4)
        expected = 8 * profile.average_cpi  # 2 blocks x 4 instrs
        assert abs(profile.estimated_cycle_distance(3, 5) - expected) < 1e-9


class TestEndToEndEstimatorEffect:
    def test_asmdb_sites_differ_from_ispy_sites(self, small_app, small_profile):
        """On a real profile with stall-dependent timing, the two
        estimators must disagree on at least some injection sites."""
        from repro.core.config import DEFAULT_CONFIG
        from repro.core.injection import frequent_miss_lines, select_site

        differing = 0
        lines = [
            line
            for line, _ in frequent_miss_lines(small_profile, DEFAULT_CONFIG)
        ][:40]
        for line in lines:
            exact = select_site(
                small_profile, line, DEFAULT_CONFIG,
                distance_estimator="cycles",
            )
            estimated = select_site(
                small_profile, line, DEFAULT_CONFIG,
                distance_estimator="ipc",
            )
            a = exact.chosen.block_id if exact.chosen else None
            b = estimated.chosen.block_id if estimated.chosen else None
            if a != b:
                differing += 1
        assert differing > 0
