"""Published reference vectors for FNV-1 64 and MurmurHash3 x86-32.

The context-hash encoding must match the real algorithms bit for bit
— a reimplementation that silently diverged would still "work" but
would no longer be the paper's hardware.
"""

import pytest

from repro.core.hashing import fnv1_64, murmur3_32

# FNV-1 (64-bit) vectors from the reference implementation's test
# suite (Fowler/Noll/Vo).
FNV1_64_VECTORS = [
    (b"", 0xCBF29CE484222325),
    (b"a", 0xAF63BD4C8601B7BE),
    (b"b", 0xAF63BD4C8601B7BD),
    (b"c", 0xAF63BD4C8601B7BC),
    (b"foo", 0xD8CBC7186BA13533),
    (b"foob", 0x0378817EE2ED65CB),
    (b"fooba", 0xD329D59B9963F790),
    (b"foobar", 0x340D8765A4DDA9C2),
]

# MurmurHash3 x86 32-bit vectors (public reference values).
MURMUR3_VECTORS = [
    (b"", 0x00000000, 0),
    (b"", 0x514E28B7, 1),
    (b"", 0x81F16F39, 0xFFFFFFFF),
    (b"test", 0xBA6BD213, 0),
    (b"test", 0x704B81DC, 0x9747B28C),
    (b"Hello, world!", 0x24884CBA, 0x9747B28C),
    (b"The quick brown fox jumps over the lazy dog", 0x2FA826CD, 0x9747B28C),
    (b"aaaa", 0x5A97808A, 0x9747B28C),
    (b"aaa", 0x283E0130, 0x9747B28C),
    (b"aa", 0x5D211726, 0x9747B28C),
    (b"a", 0x7FA09EA6, 0x9747B28C),
]


class TestFNV1Vectors:
    @pytest.mark.parametrize("data,expected", FNV1_64_VECTORS)
    def test_reference_vector(self, data, expected):
        assert fnv1_64(data) == expected


class TestMurmur3Vectors:
    @pytest.mark.parametrize("data,expected,seed", MURMUR3_VECTORS)
    def test_reference_vector(self, data, expected, seed):
        assert murmur3_32(data, seed=seed) == expected
