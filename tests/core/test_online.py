"""Online (JIT-style) I-SPY adaptation tests (paper Section VII)."""

import pytest

from repro.core.online import OnlineISpy
from repro.workloads.apps import build_app


@pytest.fixture(scope="module")
def app():
    return build_app("finagle-http", scale=0.3)


@pytest.fixture(scope="module")
def online_result(app):
    online = OnlineISpy(
        app.program,
        data_traffic_factory=lambda epoch: app.data_traffic(seed=epoch),
    )
    trace = app.trace(30_000)
    return online.run(trace, epoch_length=10_000)


class TestEpochStructure:
    def test_epoch_count(self, online_result):
        assert len(online_result.epochs) == 3

    def test_first_epoch_is_cold(self, online_result):
        assert online_result.epochs[0].plan_size == 0

    def test_later_epochs_have_plans(self, online_result):
        for epoch in online_result.epochs[1:]:
            assert epoch.plan_size > 0

    def test_profiles_collected_each_epoch(self, online_result):
        for epoch in online_result.epochs:
            assert epoch.profile is not None
            assert len(epoch.profile) == 10_000


class TestAdaptationBenefit:
    def test_warm_epochs_miss_less_than_cold(self, online_result):
        cold = online_result.epochs[0].stats.l1i_mpki
        warm = min(e.stats.l1i_mpki for e in online_result.warm_epochs)
        assert warm < cold

    def test_mpki_trajectory_length(self, online_result):
        assert len(online_result.mpki_trajectory()) == 3

    def test_total_cycles_positive(self, online_result):
        assert online_result.total_cycles > 0


class TestValidation:
    def test_rejects_bad_epoch_length(self, app):
        online = OnlineISpy(app.program)
        with pytest.raises(ValueError):
            online.run(app.trace(1000), epoch_length=0)

    def test_short_trace_single_epoch(self, app):
        online = OnlineISpy(app.program)
        result = online.run(app.trace(2000), epoch_length=10_000)
        assert len(result.epochs) == 1
