"""Counting-Bloom-filter runtime-hash tests (paper Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import LBRRuntimeHash, exact_history_match
from repro.core.hashing import bit_position_table, context_mask


def make_hash(n_blocks=64, hash_bits=16, depth=32):
    addresses = {i: 0x400000 + 0x40 * i for i in range(n_blocks)}
    table = bit_position_table(addresses, hash_bits)
    return LBRRuntimeHash(table, hash_bits=hash_bits, depth=depth), addresses


class TestPushEvict:
    def test_empty_hash_matches_nothing_but_zero(self):
        runtime, _ = make_hash()
        assert runtime.bits() == 0
        assert runtime.matches(0)
        assert not runtime.matches(1)

    def test_push_sets_bits(self):
        runtime, _ = make_hash()
        runtime.push(5)
        assert runtime.bits() != 0

    def test_fifo_depth_respected(self):
        runtime, _ = make_hash(depth=4)
        for block in range(10):
            runtime.push(block)
        assert len(runtime.history()) == 4
        assert runtime.history() == (6, 7, 8, 9)

    def test_eviction_clears_bits(self):
        runtime, _ = make_hash(depth=2, hash_bits=64)
        runtime.push(1)
        bits_after_one = runtime.bits()
        runtime.push(2)
        runtime.push(3)  # evicts 1
        runtime.push(4)  # evicts 2
        # block 1's bit should be gone unless 3/4 collide with it
        from repro.core.hashing import context_bit_positions

        bit1 = context_bit_positions(0x400040, 64)[0]
        bits_34 = {
            context_bit_positions(0x400000 + 0x40 * b, 64)[0] for b in (3, 4)
        }
        if bit1 not in bits_34:
            assert not (runtime.bits() >> bit1) & 1
        assert bits_after_one != 0

    def test_unknown_block_ignored(self):
        runtime, _ = make_hash()
        runtime.push(99999)
        assert runtime.bits() == 0
        assert runtime.history() == ()

    def test_counter_overflow_guard(self):
        addresses = {0: 0x400000}
        table = bit_position_table(addresses, 4)
        runtime = LBRRuntimeHash(table, hash_bits=4, depth=100, counter_bits=2)
        with pytest.raises(OverflowError):
            for _ in range(100):
                runtime.push(0)

    def test_reset(self):
        runtime, _ = make_hash()
        runtime.push(1)
        runtime.reset()
        assert runtime.bits() == 0
        assert runtime.history() == ()


class TestSubsetMatching:
    def test_no_false_negatives(self):
        """The paper's guarantee: if all context blocks are in the
        LBR, the hashed subset check must pass."""
        runtime, addresses = make_hash()
        context_blocks = [3, 17, 40, 61]
        for block in context_blocks:
            runtime.push(block)
        mask = context_mask(
            (addresses[b] for b in context_blocks), runtime.hash_bits
        )
        assert runtime.matches(mask)

    @given(
        history=st.lists(st.integers(0, 63), min_size=0, max_size=32),
        context=st.lists(st.integers(0, 63), min_size=1, max_size=4),
    )
    @settings(max_examples=100)
    def test_no_false_negatives_property(self, history, context):
        runtime, addresses = make_hash()
        for block in history + context:
            runtime.push(block)
        mask = context_mask((addresses[b] for b in context), runtime.hash_bits)
        assert runtime.matches(mask)

    def test_counters_track_multiplicity(self):
        runtime, _ = make_hash(hash_bits=64)
        runtime.push(7)
        runtime.push(7)
        assert max(runtime.counters()) == 2


class TestReferenceModel:
    @given(blocks=st.lists(st.integers(0, 63), min_size=0, max_size=80))
    @settings(max_examples=80)
    def test_incremental_equals_recomputed(self, blocks):
        """The rolling counter maintenance must match a from-scratch
        evaluation of the FIFO contents after any push sequence."""
        runtime, _ = make_hash(depth=16)
        for block in blocks:
            runtime.push(block)
            assert runtime.bits() == runtime.reference_bits()


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LBRRuntimeHash({}, hash_bits=0)
        with pytest.raises(ValueError):
            LBRRuntimeHash({}, hash_bits=16, depth=0)


class TestExactHistoryMatch:
    def test_all_present(self):
        assert exact_history_match([1, 2, 3], [2, 3])

    def test_missing_block(self):
        assert not exact_history_match([1, 2], [3])

    def test_empty_context_always_matches(self):
        assert exact_history_match([], [])
