"""FNV-1 / MurmurHash3 / context-encoding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    bit_position_table,
    context_bit_positions,
    context_mask,
    fnv1_64,
    murmur3_32,
    popcount,
)


class TestFNV1:
    def test_empty_input_is_offset_basis(self):
        assert fnv1_64(b"") == 0xCBF29CE484222325

    def test_known_vector_a(self):
        # FNV-1 64-bit of "a" (published test vector)
        assert fnv1_64(b"a") == 0xAF63BD4C8601B7BE

    def test_known_vector_foobar(self):
        assert fnv1_64(b"foobar") == 0x340D8765A4DDA9C2

    def test_deterministic(self):
        assert fnv1_64(b"hello") == fnv1_64(b"hello")

    def test_fits_64_bits(self):
        assert fnv1_64(b"\xff" * 100) < (1 << 64)


class TestMurmur3:
    def test_empty_zero_seed(self):
        assert murmur3_32(b"") == 0

    def test_known_vector_empty_seed1(self):
        assert murmur3_32(b"", seed=1) == 0x514E28B7

    def test_known_vector_test(self):
        # murmur3_32("test", 0) = 0xba6bd213 (public reference value)
        assert murmur3_32(b"test") == 0xBA6BD213

    def test_known_vector_hello_world(self):
        # murmur3_32("Hello, world!", 0x9747b28c) = 0x24884CBA
        assert murmur3_32(b"Hello, world!", seed=0x9747B28C) == 0x24884CBA

    def test_tail_handling(self):
        # inputs of lengths 1..7 exercise every tail branch
        values = {murmur3_32(b"x" * n) for n in range(1, 8)}
        assert len(values) == 7

    def test_fits_32_bits(self):
        assert murmur3_32(b"\xff" * 33) < (1 << 32)


class TestContextBits:
    def test_single_hash_by_default(self):
        positions = context_bit_positions(0x400000, 16)
        assert len(positions) == 1
        assert 0 <= positions[0] < 16

    def test_two_hashes_optional(self):
        positions = context_bit_positions(0x400000, 16, hashes_per_block=2)
        assert len(positions) == 2

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            context_bit_positions(0x400000, 0)
        with pytest.raises(ValueError):
            context_bit_positions(0x400000, 16, hashes_per_block=3)

    @given(address=st.integers(0, (1 << 48) - 1), bits=st.integers(1, 64))
    @settings(max_examples=100)
    def test_positions_in_range(self, address, bits):
        for position in context_bit_positions(address, bits, hashes_per_block=2):
            assert 0 <= position < bits

    def test_deterministic(self):
        a = context_bit_positions(0x1234, 16)
        b = context_bit_positions(0x1234, 16)
        assert a == b


class TestContextMask:
    def test_empty_context_is_zero(self):
        assert context_mask([], 16) == 0

    def test_mask_fits_width(self):
        mask = context_mask(range(0, 64 * 100, 64), 16)
        assert mask < (1 << 16)

    def test_union_property(self):
        a = context_mask([0x1000], 16)
        b = context_mask([0x2000], 16)
        assert context_mask([0x1000, 0x2000], 16) == a | b

    @given(
        addresses=st.lists(st.integers(0, 1 << 40), min_size=1, max_size=8),
        bits=st.integers(4, 64),
    )
    @settings(max_examples=60)
    def test_mask_has_at_most_one_bit_per_address(self, addresses, bits):
        mask = context_mask(addresses, bits)
        assert popcount(mask) <= len(set(addresses))
        assert mask != 0


class TestBitPositionTable:
    def test_table_matches_direct_hashing(self):
        addresses = {1: 0x400000, 2: 0x400040}
        table = bit_position_table(addresses, 16)
        for block, address in addresses.items():
            assert table[block] == context_bit_positions(address, 16)


class TestPopcount:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (1, 1), (0b1011, 3), ((1 << 64) - 1, 64)]
    )
    def test_values(self, value, expected):
        assert popcount(value) == expected
