"""Differential tests: columnar context discovery and planning.

The packed-``uint64`` combination search must choose the *same*
context as the bigint reference for every (site, line) pair — and the
full planning pipeline (I-SPY and AsmDB) must emit identical plans and
identical figure rows.  Plus the edge cases both engines must agree
on: zero fan-out sites, sites with no miss-leading executions, and
predictor pools smaller than ``max_predecessors``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import kernel
from repro.analysis.experiments import (
    Evaluator,
    ExperimentSettings,
    fig10_speedup,
)
from repro.baselines.asmdb import build_asmdb_plan
from repro.core.config import DEFAULT_CONFIG, ISpyConfig
from repro.core.context import discover_context
from repro.core.injection import frequent_miss_lines, select_site
from repro.core.ispy import build_ispy_plan
from repro.profiling.pebs import MissSample
from repro.profiling.profiler import ExecutionProfile, profile_execution
from repro.workloads.apps import build_app

APPS = ("wordpress", "drupal", "finagle-http")

EDGE_CONFIG = ISpyConfig(
    min_prefetch_distance=0.0,
    max_prefetch_distance=200.0,
    lbr_depth=3,
    min_miss_samples=1,
    min_context_support=2,
    context_discovery_occurrences=100,
)


def _both_modes(callable_):
    with kernel.reference_path():
        ref = callable_()
    with kernel.force_numpy_kernel():
        col = callable_()
    return ref, col


def _make_profile(block_ids, miss_events):
    """A handcrafted profile: 10 cycles per trace step; *miss_events*
    is a list of (trace_index, line) pairs (the missing block is the
    one at that index)."""
    cycles = [float(10 * i) for i in range(len(block_ids))]
    samples = [
        MissSample(
            trace_index=index,
            block_id=block_ids[index],
            line=line,
            cycle=cycles[index] + 1.0,
        )
        for index, line in miss_events
    ]
    return ExecutionProfile(
        program_name="edge-case",
        block_ids=list(block_ids),
        block_cycles=cycles,
        miss_samples=samples,
        edge_counts=Counter(zip(block_ids, block_ids[1:])),
        block_counts=Counter(block_ids),
        cumulative_instructions=[4 * i for i in range(len(block_ids))],
        lbr_depth=EDGE_CONFIG.lbr_depth,
    )


class TestRealProfiles:
    def test_discover_context_identical(self):
        app = build_app("wordpress", scale=0.25)
        trace = app.trace(12_000)
        with kernel.reference_path():
            profile = profile_execution(
                app.program, trace, data_traffic=app.data_traffic()
            )
        pairs = []
        for line, _ in frequent_miss_lines(profile, DEFAULT_CONFIG)[:15]:
            with kernel.reference_path():
                selection = select_site(profile, line, DEFAULT_CONFIG)
            if selection.chosen is not None:
                pairs.append((selection.chosen.block_id, line))
        assert pairs, "no candidate sites found — workload too small"
        some_context = False
        for site, line in pairs:
            ref, col = _both_modes(
                lambda: discover_context(profile, site, line, DEFAULT_CONFIG)
            )
            assert col == ref
            some_context = some_context or ref is not None

    @pytest.mark.parametrize("name", APPS)
    def test_plans_identical(self, name):
        app = build_app(name, scale=0.25)
        trace = app.trace(12_000)

        def plans():
            profile = profile_execution(
                app.program, trace, data_traffic=app.data_traffic()
            )
            ispy = build_ispy_plan(app.program, profile, DEFAULT_CONFIG).plan
            asmdb = build_asmdb_plan(app.program, profile, DEFAULT_CONFIG).plan
            return list(ispy), list(asmdb)

        ref, col = _both_modes(plans)
        assert col == ref

    def test_figure_rows_identical(self):
        settings = ExperimentSettings(
            profile_length=8_000, eval_length=10_000, warmup=2_000, scale=0.25
        )

        def rows():
            return fig10_speedup(Evaluator(settings), apps=["wordpress"])

        ref, col = _both_modes(rows)
        assert col == ref


class TestEdgeCases:
    def test_zero_miss_leading_occurrences_is_none(self):
        # Site 3 executes repeatedly; line 77's only miss comes BEFORE
        # every execution, so no occurrence leads to it.
        block_ids = [9, 1, 2, 3] * 6
        profile = _make_profile(block_ids, miss_events=[(0, 77)])
        ref, col = _both_modes(
            lambda: discover_context(profile, 3, 77, EDGE_CONFIG)
        )
        assert ref is None
        assert col is None

    def test_zero_fanout_site_is_none(self):
        # Every execution of site 3 is followed (one step later, by
        # block 4) by a miss of line 77: base probability 1.0 leaves no
        # context gain, so both engines must decline to condition.
        block_ids = [9, 1, 2, 3, 4] * 6
        miss_events = [
            (index, 77)
            for index, block in enumerate(block_ids)
            if block == 4
        ]
        profile = _make_profile(block_ids, miss_events)
        ref, col = _both_modes(
            lambda: discover_context(profile, 3, 77, EDGE_CONFIG)
        )
        assert ref is None
        assert col is None

    def test_pool_smaller_than_max_predecessors(self):
        # Miss-leading windows hold three distinct predecessor blocks
        # (7, 1, 2) — fewer than the default max_predecessors=4 — and
        # block 7 perfectly predicts the miss.  Filler blocks between
        # segments push the next segment's miss beyond the 200-cycle
        # window, so only same-segment misses label an occurrence.
        segments = []
        miss_events = []
        for repeat in range(8):
            base = len(segments)
            if repeat % 2 == 0:
                segments.extend([7, 1, 2, 3, 4])
                miss_events.append((base + 4, 77))
            else:
                segments.extend([8, 1, 2, 3, 4])
            segments.extend([0] * 20)
        profile = _make_profile(segments, miss_events)
        ref, col = _both_modes(
            lambda: discover_context(profile, 3, 77, EDGE_CONFIG)
        )
        assert col == ref
        assert ref is not None
        assert ref.blocks == (7,)
        assert ref.probability == 1.0
