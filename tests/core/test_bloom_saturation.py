"""Statistical false-positive behaviour of the runtime-hash.

Fig. 21's mechanism: with a fixed 32-entry history, a wider context
hash leaves more zero bits, so a context absent from the history is
less likely to pass the subset test by collision.  These tests verify
the *mechanism* statistically, independent of any workload.
"""

import random

from repro.core.bloom import LBRRuntimeHash
from repro.core.hashing import bit_position_table, context_mask


def measure_fp_rate(hash_bits, n_blocks=4000, history_len=32,
                    context_size=4, trials=300, seed=7):
    """Empirical P(subset test passes | context disjoint from history)."""
    rng = random.Random(seed)
    addresses = {i: 0x400000 + 64 * i for i in range(n_blocks)}
    table = bit_position_table(addresses, hash_bits)
    false_positives = 0
    for _ in range(trials):
        blocks = rng.sample(range(n_blocks), history_len + context_size)
        history, context = blocks[:history_len], blocks[history_len:]
        runtime = LBRRuntimeHash(table, hash_bits=hash_bits, depth=history_len)
        for block in history:
            runtime.push(block)
        mask = context_mask((addresses[b] for b in context), hash_bits)
        if runtime.matches(mask):
            false_positives += 1
    return false_positives / trials


class TestSaturation:
    def test_fp_rate_falls_with_hash_width(self):
        narrow = measure_fp_rate(8)
        paper_width = measure_fp_rate(16)
        wide = measure_fp_rate(64)
        assert narrow >= paper_width >= wide
        assert narrow - wide > 0.3

    def test_wide_hash_mostly_rejects(self):
        assert measure_fp_rate(256) < 0.05

    def test_tiny_hash_always_fires(self):
        # 2 bits against 32 pushed blocks: fully saturated
        assert measure_fp_rate(2) > 0.95

    def test_larger_contexts_are_more_selective(self):
        loose = measure_fp_rate(16, context_size=1)
        strict = measure_fp_rate(16, context_size=6)
        assert strict < loose

    def test_shallower_history_is_more_selective(self):
        deep = measure_fp_rate(16, history_len=32)
        shallow = measure_fp_rate(16, history_len=8)
        assert shallow < deep
