"""Prefetch-plan validation tests."""

import pytest

from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.core.validate import PlanIssue, assert_valid, validate_plan

from ..conftest import make_program


@pytest.fixture()
def program():
    return make_program([64] * 8)


def plan_with(*instrs):
    plan = PrefetchPlan()
    plan.extend(instrs)
    return plan


class TestCleanPlans:
    def test_empty_plan_is_clean(self, program):
        assert validate_plan(PrefetchPlan(), program) == []

    def test_well_formed_plan_is_clean(self, program):
        target = program.block(5).lines[0]
        plan = plan_with(PrefetchInstr(site_block=0, base_line=target))
        assert validate_plan(plan, program) == []
        assert_valid(plan, program)  # no raise

    def test_real_ispy_plan_is_clean(self, small_app, small_profile):
        from repro.core.ispy import build_ispy_plan

        result = build_ispy_plan(small_app.program, small_profile)
        errors = validate_plan(
            result.plan, small_app.program, errors_only=True
        )
        assert errors == []


class TestErrors:
    def test_unknown_site(self, program):
        plan = plan_with(PrefetchInstr(site_block=99, base_line=1))
        issues = validate_plan(plan, program)
        assert any(i.kind == "unknown-site" for i in issues)
        with pytest.raises(ValueError):
            assert_valid(plan, program)

    def test_line_outside_text(self, program):
        plan = plan_with(PrefetchInstr(site_block=0, base_line=10**9))
        issues = validate_plan(plan, program)
        assert any(i.kind == "line-outside-text" for i in issues)

    def test_coalesced_reaching_past_text_is_fine(self, program):
        last_line = max(program.block(7).lines)
        plan = plan_with(
            PrefetchInstr(site_block=0, base_line=last_line, bit_vector=0xFF)
        )
        errors = validate_plan(plan, program, errors_only=True)
        assert errors == []


class TestWarnings:
    def test_duplicate_instruction(self, program):
        target = program.block(5).lines[0]
        plan = plan_with(
            PrefetchInstr(site_block=0, base_line=target),
            PrefetchInstr(site_block=0, base_line=target),
        )
        issues = validate_plan(plan, program)
        assert any(i.kind == "duplicate-instruction" for i in issues)
        # warnings do not trip assert_valid
        assert_valid(plan, program)

    def test_self_prefetch(self, program):
        own_line = program.block(0).lines[0]
        plan = plan_with(PrefetchInstr(site_block=0, base_line=own_line))
        issues = validate_plan(plan, program)
        assert any(i.kind == "self-prefetch" for i in issues)

    def test_errors_only_filters_warnings(self, program):
        own_line = program.block(0).lines[0]
        plan = plan_with(PrefetchInstr(site_block=0, base_line=own_line))
        assert validate_plan(plan, program, errors_only=True) == []


class TestPlanIssue:
    def test_is_error_classification(self):
        assert PlanIssue("unknown-site", 0, "x").is_error
        assert not PlanIssue("self-prefetch", 0, "x").is_error
