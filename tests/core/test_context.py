"""Miss-context discovery tests on hand-built profiles (Fig. 6)."""

from collections import Counter

from repro.core.config import ISpyConfig
from repro.core.context import ContextResult, discover_context
from repro.profiling.pebs import MissSample
from repro.profiling.profiler import ExecutionProfile

MISS_BLOCK = 90
MISS_LINE = 999


def build_profile(units, cycles_per_block=4.0):
    """Assemble an ExecutionProfile from repeating block sequences.

    ``units`` is a list of block-id lists; they are concatenated in
    order.  Every execution of ``MISS_BLOCK`` is recorded as a sampled
    miss of ``MISS_LINE``.
    """
    block_ids = [b for unit in units for b in unit]
    block_cycles = [i * cycles_per_block for i in range(len(block_ids))]
    samples = [
        MissSample(i, MISS_BLOCK, MISS_LINE, block_cycles[i])
        for i, b in enumerate(block_ids)
        if b == MISS_BLOCK
    ]
    cumulative = list(range(0, 4 * len(block_ids), 4))
    return ExecutionProfile(
        program_name="synthetic",
        block_ids=block_ids,
        block_cycles=block_cycles,
        miss_samples=samples,
        edge_counts=Counter(zip(block_ids, block_ids[1:])),
        block_counts=Counter(block_ids),
        cumulative_instructions=cumulative,
    )


def context_config(**overrides):
    defaults = dict(
        min_prefetch_distance=0.0,
        max_prefetch_distance=40.0,
        min_context_support=3,
        min_context_probability=0.5,
        min_context_recall=0.5,
        min_context_gain=0.05,
    )
    defaults.update(overrides)
    return ISpyConfig(**defaults)


SITE = 50
PREDICTOR = 7
OTHER = 8

#: Filler blocks shared by every unit: they appear in all LBR windows,
#: so they carry no information about the upcoming miss.
FILLER = list(range(100, 131))  # 31 blocks


def unit(markers, tail):
    """One request: markers, filler padding, the site, then the tail.

    The filler is sized so the 32-deep LBR window at SITE contains
    exactly this unit's markers and nothing from the previous unit.
    """
    markers = list(markers)
    padding = FILLER[: 32 - len(markers)]
    return markers + padding + [SITE, 2, tail]


def predictive_units(repeats=20):
    """PREDICTOR before SITE => miss follows; OTHER => no miss."""
    units = []
    for index in range(repeats):
        if index % 2 == 0:
            units.append(unit([PREDICTOR], MISS_BLOCK))
        else:
            units.append(unit([OTHER], 3))
    return units


class TestDiscovery:
    def test_finds_the_predictive_block(self):
        profile = build_profile(predictive_units())
        result = discover_context(profile, SITE, MISS_LINE, context_config())
        assert result is not None
        assert PREDICTOR in result.blocks
        assert result.probability == 1.0
        assert result.recall == 1.0

    def test_base_probability_reported(self):
        profile = build_profile(predictive_units())
        result = discover_context(profile, SITE, MISS_LINE, context_config())
        assert 0.4 <= result.base_probability <= 0.6
        assert result.gain > 0.3

    def test_uninformative_history_returns_none(self):
        # miss follows every execution of SITE: no context beats base
        units = [unit([PREDICTOR], MISS_BLOCK)] * 10
        profile = build_profile(units)
        result = discover_context(profile, SITE, MISS_LINE, context_config())
        assert result is None  # gain gate: base probability is already 1

    def test_no_misses_returns_none(self):
        units = [unit([PREDICTOR], 3)] * 10
        profile = build_profile(units)
        assert discover_context(profile, SITE, MISS_LINE, context_config()) is None

    def test_support_gate(self):
        profile = build_profile(predictive_units(repeats=4))
        config = context_config(min_context_support=50)
        assert discover_context(profile, SITE, MISS_LINE, config) is None

    def test_probability_gate(self):
        # PREDICTOR leads to a miss only 50% of the time it appears
        units = []
        for index in range(40):
            tail = MISS_BLOCK if index % 4 == 0 else 3
            units.append(unit([PREDICTOR], tail))
        profile = build_profile(units)
        config = context_config(min_context_probability=0.9)
        assert discover_context(profile, SITE, MISS_LINE, config) is None

    def test_multi_block_context(self):
        """Miss requires BOTH predictors in history."""
        a, b = 7, 9
        units = []
        for index in range(40):
            mode = index % 4
            if mode == 0:
                units.append(unit([a, b], MISS_BLOCK))
            elif mode == 1:
                units.append(unit([a, 4], 3))
            elif mode == 2:
                units.append(unit([5, b], 3))
            else:
                units.append(unit([5, 4], 3))
        profile = build_profile(units)
        result = discover_context(
            profile, SITE, MISS_LINE, context_config(min_context_recall=0.9)
        )
        assert result is not None
        assert set(result.blocks) == {a, b}
        assert result.probability == 1.0

    def test_site_itself_never_a_predictor(self):
        profile = build_profile(predictive_units())
        result = discover_context(profile, SITE, MISS_LINE, context_config())
        assert SITE not in result.blocks

    def test_context_size_capped(self):
        profile = build_profile(predictive_units())
        config = context_config(max_predecessors=1, predictor_pool_size=8)
        result = discover_context(profile, SITE, MISS_LINE, config)
        assert result is not None
        assert len(result.blocks) == 1


class TestContextResult:
    def test_gain_property(self):
        result = ContextResult(
            blocks=(1,), probability=0.8, support=10, recall=0.9,
            base_probability=0.3,
        )
        assert abs(result.gain - 0.5) < 1e-12
