"""Prefetch-coalescing tests (paper Fig. 8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import (
    PlannedPrefetch,
    coalesce_prefetches,
    passthrough_groups,
)


def planned(site, line, context=()):
    return PlannedPrefetch(site=site, line=line, context=context, covers=(line,))


class TestGrouping:
    def test_same_site_same_context_merges(self):
        groups, stats = coalesce_prefetches(
            [planned(1, 100), planned(1, 102)], coalesce_bits=8
        )
        assert len(groups) == 1
        group = groups[0]
        assert group.base_line == 100
        assert group.bit_vector == 0b10
        assert group.member_lines == (100, 102)
        assert stats.merged_prefetches == 1

    def test_figure8_example(self):
        """Addresses 0xA,0xD share context C0; 0x4,0x2,0x7 share C1."""
        c0, c1 = (10,), (20,)
        records = [
            planned(1, 0xA, c0),
            planned(1, 0xD, c0),
            planned(1, 0x4, c1),
            planned(1, 0x2, c1),
            planned(1, 0x7, c1),
        ]
        groups, _ = coalesce_prefetches(records, coalesce_bits=8)
        by_context = {g.context: g for g in groups}
        assert len(groups) == 2
        g0 = by_context[c0]
        assert g0.base_line == 0xA and g0.bit_vector == 1 << (0xD - 0xA - 1)
        g1 = by_context[c1]
        assert g1.base_line == 0x2
        assert g1.bit_vector == (1 << (0x4 - 0x2 - 1)) | (1 << (0x7 - 0x2 - 1))

    def test_different_contexts_not_merged(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100, (5,)), planned(1, 101, (6,))], coalesce_bits=8
        )
        assert len(groups) == 2

    def test_different_sites_not_merged(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100), planned(2, 101)], coalesce_bits=8
        )
        assert len(groups) == 2

    def test_window_limit_respected(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100), planned(1, 109)], coalesce_bits=8
        )
        assert len(groups) == 2  # distance 9 > 8

    def test_line_at_window_edge_included(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100), planned(1, 108)], coalesce_bits=8
        )
        assert len(groups) == 1

    def test_duplicate_lines_collapse(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100), planned(1, 100)], coalesce_bits=8
        )
        assert len(groups) == 1
        assert groups[0].bit_vector == 0

    def test_covers_union(self):
        groups, _ = coalesce_prefetches(
            [planned(1, 100), planned(1, 103)], coalesce_bits=8
        )
        assert groups[0].covers == (100, 103)


class TestStats:
    def test_distance_histogram(self):
        _, stats = coalesce_prefetches(
            [planned(1, 100), planned(1, 101), planned(1, 105)],
            coalesce_bits=8,
        )
        assert stats.distance_histogram == {1: 1, 5: 1}

    def test_lines_per_instruction(self):
        _, stats = coalesce_prefetches(
            [planned(1, 100), planned(1, 101), planned(2, 50)],
            coalesce_bits=8,
        )
        assert stats.lines_per_instruction == {2: 1, 1: 1}

    def test_fraction_below(self):
        _, stats = coalesce_prefetches(
            [planned(1, 100), planned(1, 101), planned(2, 50)],
            coalesce_bits=8,
        )
        assert stats.fraction_below(4) == 1.0
        assert stats.fraction_below(2) == 0.5

    def test_distance_distribution_normalized(self):
        _, stats = coalesce_prefetches(
            [planned(1, 100), planned(1, 101), planned(1, 105)],
            coalesce_bits=8,
        )
        assert abs(sum(stats.distance_distribution().values()) - 1.0) < 1e-12


class TestPassthrough:
    def test_one_group_per_record(self):
        records = [planned(1, 100), planned(1, 101)]
        groups = passthrough_groups(records)
        assert len(groups) == 2
        assert all(g.bit_vector == 0 for g in groups)


class TestProperties:
    @given(
        lines=st.lists(st.integers(0, 200), min_size=1, max_size=40),
        bits=st.integers(1, 16),
    )
    @settings(max_examples=80)
    def test_members_exactly_cover_inputs(self, lines, bits):
        records = [planned(1, line) for line in lines]
        groups, _ = coalesce_prefetches(records, coalesce_bits=bits)
        members = sorted(m for g in groups for m in g.member_lines)
        assert members == sorted(set(lines))

    @given(
        lines=st.lists(st.integers(0, 200), min_size=1, max_size=40),
        bits=st.integers(1, 16),
    )
    @settings(max_examples=80)
    def test_bit_vectors_fit_and_match_members(self, lines, bits):
        records = [planned(1, line) for line in lines]
        groups, _ = coalesce_prefetches(records, coalesce_bits=bits)
        for group in groups:
            assert group.bit_vector < (1 << bits)
            decoded = [group.base_line]
            vector, offset = group.bit_vector, 1
            while vector:
                if vector & 1:
                    decoded.append(group.base_line + offset)
                vector >>= 1
                offset += 1
            assert tuple(decoded) == group.member_lines

    @given(lines=st.lists(st.integers(0, 100), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_wider_windows_never_emit_more_instructions(self, lines):
        records = [planned(1, line) for line in lines]
        narrow, _ = coalesce_prefetches(records, coalesce_bits=1)
        wide, _ = coalesce_prefetches(records, coalesce_bits=16)
        assert len(wide) <= len(narrow)
