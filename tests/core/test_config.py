"""ISpyConfig validation and variant tests."""

import pytest

from repro.core.config import DEFAULT_CONFIG, ISpyConfig


class TestPaperDefaults:
    def test_prefetch_window(self):
        assert DEFAULT_CONFIG.min_prefetch_distance == 27.0
        assert DEFAULT_CONFIG.max_prefetch_distance == 200.0

    def test_context_parameters(self):
        assert DEFAULT_CONFIG.max_predecessors == 4
        assert DEFAULT_CONFIG.context_hash_bits == 16
        assert DEFAULT_CONFIG.lbr_depth == 32

    def test_coalescing_width(self):
        assert DEFAULT_CONFIG.coalesce_bits == 8

    def test_both_features_on(self):
        assert DEFAULT_CONFIG.enable_conditional
        assert DEFAULT_CONFIG.enable_coalescing


class TestVariants:
    def test_conditional_only(self):
        config = DEFAULT_CONFIG.conditional_only()
        assert config.enable_conditional and not config.enable_coalescing

    def test_coalescing_only(self):
        config = DEFAULT_CONFIG.coalescing_only()
        assert config.enable_coalescing and not config.enable_conditional

    def test_with_window(self):
        config = DEFAULT_CONFIG.with_window(10, 100)
        assert config.min_prefetch_distance == 10
        assert config.max_prefetch_distance == 100

    def test_variants_do_not_mutate_original(self):
        DEFAULT_CONFIG.conditional_only()
        assert DEFAULT_CONFIG.enable_coalescing


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ISpyConfig(min_prefetch_distance=100, max_prefetch_distance=50)

    def test_negative_min_rejected(self):
        with pytest.raises(ValueError):
            ISpyConfig(min_prefetch_distance=-1)

    def test_zero_predecessors_rejected(self):
        with pytest.raises(ValueError):
            ISpyConfig(max_predecessors=0)

    def test_pool_smaller_than_predecessors_rejected(self):
        with pytest.raises(ValueError):
            ISpyConfig(max_predecessors=8, predictor_pool_size=4)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            ISpyConfig(context_hash_bits=0)
        with pytest.raises(ValueError):
            ISpyConfig(coalesce_bits=0)

    def test_fanout_threshold_range(self):
        with pytest.raises(ValueError):
            ISpyConfig(conditional_fanout_threshold=1.5)
