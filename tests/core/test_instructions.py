"""Prefetch-instruction family and plan tests (paper Section III)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instructions import (
    BASE_PREFETCH_BYTES,
    PrefetchInstr,
    PrefetchPlan,
    empty_plan,
)


class TestKinds:
    def test_plain(self):
        instr = PrefetchInstr(site_block=1, base_line=10)
        assert instr.kind == "prefetch"
        assert not instr.is_conditional and not instr.is_coalesced

    def test_cprefetch(self):
        instr = PrefetchInstr(site_block=1, base_line=10, context_mask=0x12)
        assert instr.kind == "Cprefetch"

    def test_lprefetch(self):
        instr = PrefetchInstr(site_block=1, base_line=10, bit_vector=0b1)
        assert instr.kind == "Lprefetch"

    def test_clprefetch(self):
        instr = PrefetchInstr(
            site_block=1, base_line=10, bit_vector=0b1, context_mask=0x12
        )
        assert instr.kind == "CLprefetch"


class TestEncodedSizes:
    def test_plain_is_7_bytes(self):
        assert PrefetchInstr(site_block=1, base_line=10).size_bytes == 7

    def test_lprefetch_8_bit_vector_is_8_bytes(self):
        instr = PrefetchInstr(site_block=1, base_line=10, bit_vector=1)
        assert instr.size_bytes == 8  # paper Section III-B

    def test_cprefetch_16_bit_hash_is_9_bytes(self):
        instr = PrefetchInstr(site_block=1, base_line=10, context_mask=1)
        assert instr.size_bytes == 9

    def test_clprefetch_is_10_bytes(self):
        instr = PrefetchInstr(
            site_block=1, base_line=10, context_mask=1, bit_vector=1
        )
        assert instr.size_bytes == 10

    def test_wider_hash_costs_more(self):
        narrow = PrefetchInstr(
            site_block=1, base_line=10, context_mask=1, context_hash_bits=8
        )
        wide = PrefetchInstr(
            site_block=1, base_line=10, context_mask=1, context_hash_bits=64
        )
        assert narrow.size_bytes == BASE_PREFETCH_BYTES + 1
        assert wide.size_bytes == BASE_PREFETCH_BYTES + 8


class TestTargetLines:
    def test_single_line(self):
        instr = PrefetchInstr(site_block=1, base_line=100)
        assert instr.target_lines() == (100,)

    def test_bit_vector_expansion(self):
        instr = PrefetchInstr(site_block=1, base_line=100, bit_vector=0b10110)
        assert instr.target_lines() == (100, 102, 103, 105)

    def test_full_vector_brings_nine_lines(self):
        instr = PrefetchInstr(site_block=1, base_line=0, bit_vector=0xFF)
        assert len(instr.target_lines()) == 9  # paper: up to 9 lines

    @given(vector=st.integers(0, 255))
    @settings(max_examples=60)
    def test_line_count_is_popcount_plus_one(self, vector):
        instr = PrefetchInstr(site_block=1, base_line=0, bit_vector=vector)
        assert len(instr.target_lines()) == bin(vector).count("1") + 1


class TestValidation:
    def test_vector_must_fit(self):
        with pytest.raises(ValueError):
            PrefetchInstr(site_block=1, base_line=0, bit_vector=1 << 8)

    def test_negative_vector_rejected(self):
        with pytest.raises(ValueError):
            PrefetchInstr(site_block=1, base_line=0, bit_vector=-1)

    def test_mask_must_fit_hash_bits(self):
        with pytest.raises(ValueError):
            PrefetchInstr(
                site_block=1, base_line=0, context_mask=1 << 16
            )


class TestPlan:
    def test_add_and_lookup(self):
        plan = PrefetchPlan()
        instr = PrefetchInstr(site_block=5, base_line=10)
        plan.add(instr)
        assert plan.at_site(5) == (instr,)
        assert plan.at_site(6) == ()

    def test_len_and_iter(self):
        plan = PrefetchPlan()
        plan.extend(
            PrefetchInstr(site_block=s, base_line=10 + s) for s in range(4)
        )
        assert len(plan) == 4
        assert len(list(plan)) == 4
        assert set(plan.sites()) == {0, 1, 2, 3}

    def test_static_bytes(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=10))          # 7
        plan.add(PrefetchInstr(site_block=1, base_line=20, bit_vector=1))  # 8
        assert plan.static_bytes == 15

    def test_static_increase(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=10))
        assert plan.static_increase(700) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            plan.static_increase(0)

    def test_kind_counts(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=10))
        plan.add(PrefetchInstr(site_block=1, base_line=20, context_mask=1))
        counts = plan.kind_counts()
        assert counts == {"prefetch": 1, "Cprefetch": 1}

    def test_covered_lines(self):
        plan = PrefetchPlan()
        plan.add(PrefetchInstr(site_block=1, base_line=10, bit_vector=0b1))
        assert plan.covered_lines() == (10, 11)

    def test_empty_plan(self):
        plan = empty_plan()
        assert len(plan) == 0
        assert plan.static_bytes == 0
