"""Cross-module property-based tests.

Hypothesis drives randomized programs, traces and plans through the
full simulator and checks the invariants that hold for *any* input —
the accounting identities every figure ultimately rests on.
"""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.instructions import PrefetchInstr, PrefetchPlan
from repro.io import ArtifactStore
from repro.sim.cpu import CoreSimulator, simulate
from repro.sim.params import MachineParams
from repro.sim.streaming import StoreCheckpointer
from repro.sim.trace import BlockInfo, BlockTrace, Program

# -- strategies -------------------------------------------------------------


@st.composite
def programs(draw):
    n_blocks = draw(st.integers(2, 20))
    sizes = draw(
        st.lists(st.integers(8, 200), min_size=n_blocks, max_size=n_blocks)
    )
    blocks = []
    address = 0x400000
    for block_id, size in enumerate(sizes):
        blocks.append(
            BlockInfo(block_id, address, size, max(1, size // 4))
        )
        address += size + draw(st.integers(0, 64))  # optional padding
    return Program(blocks)


@st.composite
def programs_with_traces(draw):
    program = draw(programs())
    ids = program.block_ids()
    length = draw(st.integers(1, 120))
    trace = BlockTrace(
        [ids[draw(st.integers(0, len(ids) - 1))] for _ in range(length)]
    )
    return program, trace


@st.composite
def programs_traces_plans(draw):
    program, trace = draw(programs_with_traces())
    plan = PrefetchPlan()
    n_instrs = draw(st.integers(0, 6))
    ids = program.block_ids()
    lines = sorted(
        {line for bid in ids for line in program.lines_of(bid)}
    )
    for _ in range(n_instrs):
        plan.add(
            PrefetchInstr(
                site_block=ids[draw(st.integers(0, len(ids) - 1))],
                base_line=lines[draw(st.integers(0, len(lines) - 1))],
                bit_vector=draw(st.integers(0, 255)),
            )
        )
    return program, trace, plan


# -- invariants -------------------------------------------------------------


class TestSimulationInvariants:
    @given(programs_with_traces())
    @settings(max_examples=60, deadline=None)
    def test_accesses_equal_lines_fetched(self, case):
        program, trace = case
        stats = simulate(program, trace)
        expected = sum(len(program.lines_of(b)) for b in trace)
        assert stats.l1i_accesses == expected

    @given(programs_with_traces())
    @settings(max_examples=60, deadline=None)
    def test_ideal_never_slower(self, case):
        program, trace = case
        real = simulate(program, trace)
        ideal = simulate(program, trace, ideal=True)
        assert ideal.cycles <= real.cycles
        assert ideal.l1i_misses == 0

    @given(programs_with_traces())
    @settings(max_examples=60, deadline=None)
    def test_cycles_decompose(self, case):
        program, trace = case
        stats = simulate(program, trace)
        assert stats.cycles == stats.compute_cycles + stats.frontend_stall_cycles
        assert stats.frontend_stall_cycles >= 0
        assert stats.program_instructions == trace.instruction_count(program)

    @given(programs_with_traces())
    @settings(max_examples=40, deadline=None)
    def test_misses_bounded_by_accesses(self, case):
        program, trace = case
        stats = simulate(program, trace)
        assert 0 <= stats.l1i_misses <= stats.l1i_accesses
        assert sum(stats.miss_level_counts.values()) == stats.l1i_misses

    @given(programs_with_traces())
    @settings(max_examples=40, deadline=None)
    def test_replay_is_deterministic(self, case):
        program, trace = case
        a = simulate(program, trace)
        b = simulate(program, trace)
        assert a.cycles == b.cycles
        assert a.l1i_misses == b.l1i_misses


class TestPrefetchedSimulationInvariants:
    @given(programs_traces_plans())
    @settings(max_examples=60, deadline=None)
    def test_prefetching_never_crashes_and_accounts(self, case):
        program, trace, plan = case
        stats = simulate(program, trace, plan=plan)
        executed_sites = sum(
            len(plan.at_site(block)) for block in trace
        )
        assert stats.prefetch_instructions_executed == executed_sites
        assert (
            stats.prefetches_useful
            <= stats.prefetches_issued + stats.prefetches_resident
        )

    @given(programs_traces_plans())
    @settings(max_examples=40, deadline=None)
    def test_warmup_region_not_counted(self, case):
        program, trace, plan = case
        warm = len(trace) // 2
        stats = simulate(program, trace, plan=plan, warmup=warm)
        remaining = trace.block_ids[warm:]
        expected = sum(len(program.lines_of(b)) for b in remaining)
        assert stats.l1i_accesses == expected

    @given(programs_traces_plans(), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_any_insertion_fraction_is_sound(self, case, fraction):
        program, trace, plan = case
        stats = simulate(
            program, trace, plan=plan, prefetch_insertion_fraction=fraction
        )
        assert stats.cycles > 0


class _KillAfter(StoreCheckpointer):
    """A checkpointer that dies after its k-th successful save —
    the crash model for the resume invariants below."""

    def __init__(self, store, parts, kill_at):
        super().__init__(store, parts)
        self.kill_at = kill_at
        self.saves = 0

    def save(self, index, payload):
        super().save(index, payload)
        self.saves += 1
        if self.saves >= self.kill_at:
            raise KeyboardInterrupt("simulated crash")


class TestShardedResumeInvariants:
    """Killing a sharded run after any number of checkpoints and
    re-running it against the same ArtifactStore must produce exactly
    the uninterrupted whole-trace result.

    If the crash lands after the final checkpoint, the first run
    completes and the resume degenerates to a fresh run — also
    required to match, so the property holds for every ``kill_at``.
    """

    @given(programs_traces_plans(), st.integers(1, 6), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_killed_run_resumes_to_identical_result(
        self, case, kill_at, warmup
    ):
        program, trace, plan = case
        whole = simulate(program, trace, plan=plan, warmup=warmup)

        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            parts = {"case": "resume-property", "warmup": warmup}
            try:
                CoreSimulator(program, plan=plan).run(
                    trace, warmup=warmup, shard_insns=40,
                    checkpointer=_KillAfter(store, parts, kill_at),
                )
            except KeyboardInterrupt:
                pass
            resumed = CoreSimulator(program, plan=plan).run(
                trace, warmup=warmup, shard_insns=40,
                checkpointer=StoreCheckpointer(store, parts),
            )
        assert resumed == whole

    @given(programs_with_traces(), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_resume_survives_repeated_crashes(self, case, crashes):
        """Crash-resume-crash-resume...: every restart picks up from
        the newest surviving checkpoint and still lands exactly on
        the whole-trace statistics."""
        program, trace = case
        whole = simulate(program, trace)

        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            parts = {"case": "repeated-crashes"}
            for _ in range(crashes):
                try:
                    CoreSimulator(program).run(
                        trace, shard_insns=25,
                        checkpointer=_KillAfter(store, parts, 1),
                    )
                except KeyboardInterrupt:
                    pass
            resumed = CoreSimulator(program).run(
                trace, shard_insns=25,
                checkpointer=StoreCheckpointer(store, parts),
            )
        assert resumed == whole

    @given(programs_with_traces(), st.integers(1, 4), st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_killed_parallel_run_resumes_to_identical_result(
        self, case, kill_at, resume_parallel
    ):
        """Exact parallel replay writes the sequential checkpoint
        format: killing the pooled run mid-flight and resuming — with
        either executor — converges on the whole-trace statistics."""
        from repro.sim.parallel import ParallelConfig

        program, trace = case
        whole = simulate(program, trace)

        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            parts = {"case": "parallel-resume"}
            try:
                CoreSimulator(program).run(
                    trace, shard_insns=25,
                    checkpointer=_KillAfter(store, parts, kill_at),
                    parallel=ParallelConfig(mode="exact", workers=2),
                )
            except KeyboardInterrupt:
                pass
            resumed = CoreSimulator(program).run(
                trace, shard_insns=25,
                checkpointer=StoreCheckpointer(store, parts),
                parallel=(
                    ParallelConfig(mode="exact", workers=2)
                    if resume_parallel
                    else None
                ),
            )
        assert resumed == whole


class TestCompositionLawInvariants:
    """The level-parameterized LRU stitching law behind exact parallel
    replay: for *any* access stream and *any* split of it into chunks,
    composing the per-chunk summaries equals streaming every access —
    checked here for the L2 and L3 geometries, which reuse the law
    that was first written for the L1I."""

    @pytest.mark.skipif(
        not kernel.HAVE_NUMPY, reason="the vectorized summary needs numpy"
    )
    @given(
        st.lists(st.integers(0, 2047), min_size=0, max_size=400),
        st.lists(st.integers(0, 400), min_size=0, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_compose_of_split_equals_whole_stream(self, lines, raw_cuts):
        from repro.sim.array_replay import _lru_stream
        from repro.sim.parallel import _lru_summary, compose_lru_state

        machine = MachineParams()
        cuts = sorted({min(cut, len(lines)) for cut in raw_cuts})
        chunks = [
            lines[start:stop]
            for start, stop in zip([0] + cuts, cuts + [len(lines)])
        ]
        for level in (machine.l2, machine.l3):
            sets = [line % level.num_sets for line in lines]
            _hits, _evicts, whole = _lru_stream(lines, sets, level.ways, {})
            state = {}
            for chunk in chunks:
                state = compose_lru_state(
                    state,
                    _lru_summary(chunk, level.num_sets, level.ways),
                    level.ways,
                )
            assert {k: list(v) for k, v in whole.items() if v} == {
                k: list(v) for k, v in state.items() if v
            }


class TestMachineInvariants:
    @given(
        programs_with_traces(),
        st.floats(0.5, 4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_faster_core_never_slower(self, case, ipc):
        program, trace = case
        slow = simulate(program, trace, machine=MachineParams(base_ipc=ipc))
        fast = simulate(
            program, trace, machine=MachineParams(base_ipc=ipc * 2)
        )
        assert fast.cycles <= slow.cycles
