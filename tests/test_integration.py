"""Cross-module integration tests: the whole pipeline, end to end.

These follow the paper's Fig. 9 usage model on a scaled-down
application: online profiling -> offline analysis -> injected binary
-> evaluation, and assert the orderings the paper's evaluation
establishes.
"""

import pytest

from repro.baselines.asmdb import build_asmdb_plan
from repro.baselines.contiguous import (
    build_contiguous_plan,
    build_noncontiguous_plan,
)
from repro.baselines.ideal import simulate_ideal
from repro.cfg.builder import build_dynamic_cfg
from repro.core.config import DEFAULT_CONFIG
from repro.core.ispy import ISpy, build_ispy_plan
from repro.profiling.profiler import profile_execution
from repro.sim.cpu import CoreSimulator, simulate
from repro.workloads.apps import build_app

WARMUP = 4000


@pytest.fixture(scope="module")
def pipeline(small_app_mod):
    app = small_app_mod
    profile = profile_execution(
        app.program, app.trace(20_000), data_traffic=app.data_traffic()
    )
    eval_trace = app.trace(24_000, seed=app.spec.seed + 31337)
    return app, profile, eval_trace


@pytest.fixture(scope="module")
def small_app_mod():
    return build_app("tomcat", scale=0.3)


def run(app, trace, plan=None, ideal=False):
    return simulate(
        app.program,
        trace,
        plan=plan,
        ideal=ideal,
        warmup=WARMUP,
        data_traffic=None if ideal else app.data_traffic(seed=2),
    )


class TestPipelineOrderings:
    def test_speedup_ordering(self, pipeline):
        app, profile, trace = pipeline
        ispy = build_ispy_plan(app.program, profile).plan
        asmdb = build_asmdb_plan(app.program, profile).plan
        base = run(app, trace)
        s_ideal = run(app, trace, ideal=True)
        s_ispy = run(app, trace, plan=ispy)
        s_asmdb = run(app, trace, plan=asmdb)
        assert s_ideal.cycles < s_ispy.cycles < base.cycles
        assert s_ideal.cycles < s_asmdb.cycles < base.cycles

    def test_mpki_nearly_eliminated(self, pipeline):
        app, profile, trace = pipeline
        ispy = build_ispy_plan(app.program, profile).plan
        base = run(app, trace)
        s_ispy = run(app, trace, plan=ispy)
        assert s_ispy.l1i_mpki < 0.4 * base.l1i_mpki

    def test_ispy_plans_fewer_instructions_than_asmdb(self, pipeline):
        app, profile, _ = pipeline
        ispy = build_ispy_plan(app.program, profile).plan
        asmdb = build_asmdb_plan(app.program, profile).plan
        assert len(ispy) < len(asmdb)
        assert ispy.static_bytes < asmdb.static_bytes

    def test_ablation_arms_beat_baseline(self, pipeline):
        app, profile, trace = pipeline
        base = run(app, trace)
        for config in (
            DEFAULT_CONFIG.conditional_only(),
            DEFAULT_CONFIG.coalescing_only(),
        ):
            plan = ISpy(config).build_plan(app.program, profile).plan
            stats = run(app, trace, plan=plan)
            assert stats.cycles < base.cycles


class TestWindowLimitStudy:
    def test_noncontiguous_prefetches_fewer_lines_for_same_misses(self, pipeline):
        app, profile, trace = pipeline
        contiguous = build_contiguous_plan(app.program, profile)
        noncontiguous = build_noncontiguous_plan(app.program, profile)
        s_c = run(app, trace, plan=contiguous)
        s_n = run(app, trace, plan=noncontiguous)
        assert s_n.prefetches_issued < s_c.prefetches_issued
        # both eliminate the bulk of misses
        base = run(app, trace)
        assert s_c.l1i_mpki < 0.5 * base.l1i_mpki
        assert s_n.l1i_mpki < 0.5 * base.l1i_mpki


class TestProfilingConsistency:
    def test_profile_matches_simulation(self, pipeline):
        app, profile, _ = pipeline
        assert profile.baseline_stats is not None
        assert profile.sampled_miss_count == profile.baseline_stats.l1i_misses

    def test_cfg_reconstruction(self, pipeline):
        app, profile, _ = pipeline
        cfg = build_dynamic_cfg(profile)
        assert len(cfg) <= len(app.program)
        assert cfg.total_edge_weight() == len(profile.block_ids) - 1


class TestConditionalHardwarePath:
    def test_runtime_suppression_happens(self, pipeline):
        app, profile, trace = pipeline
        result = build_ispy_plan(app.program, profile)
        if not result.report.contexts:
            pytest.skip("no conditional prefetches adopted at this scale")
        core = CoreSimulator(
            app.program,
            plan=result.plan,
            data_traffic=app.data_traffic(seed=2),
            track_exact_context=True,
        )
        stats = core.run(trace, warmup=WARMUP)
        assert stats.prefetch_instructions_executed > 0
        # conditional checks ran: suppressions or firings recorded
        total = (
            core.engine.true_positive_firings
            + core.engine.false_positive_firings
            + stats.prefetches_suppressed
        )
        assert total > 0

    def test_ideal_runner_matches_simulate_ideal(self, pipeline):
        app, _, trace = pipeline
        a = run(app, trace, ideal=True)
        b = simulate_ideal(app.program, trace)
        # simulate_ideal has no warmup arg here; compare rates
        assert a.l1i_misses == b.l1i_misses == 0
